// MSDP (draft-ietf-msdp, later RFC 3618): Source-Active flooding between
// PIM-SM Rendezvous Points so receivers in one domain can find sources
// registered in another. The paper calls out MSDP as a protocol with no
// usable MIB at all — which is exactly why Mantra scrapes the SA cache from
// the router CLI; our router renders the same `show ip msdp sa-cache` text.
//
// Implemented: SA origination by the RP, periodic re-origination, peer-RPF
// flooding, mesh groups, SA cache with expiry.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "net/ipv4.hpp"
#include "sim/engine.hpp"

namespace mantra::msdp {

struct SourceActive {
  net::Ipv4Address sender;     ///< filled in by the transport
  net::Ipv4Address origin_rp;  ///< RP that originated the SA
  net::Ipv4Address source;
  net::Ipv4Address group;
};

struct SaCacheEntry {
  net::Ipv4Address source;
  net::Ipv4Address group;
  net::Ipv4Address origin_rp;
  net::Ipv4Address learned_from;  ///< peer; unspecified if locally originated
  sim::TimePoint first_seen;
  sim::TimePoint last_refresh;
};

struct PeerConfig {
  net::Ipv4Address address;
  int mesh_group = 0;  ///< 0 = no mesh group
};

struct Config {
  std::vector<PeerConfig> peers;
  sim::Duration sa_advertisement_interval = sim::Duration::seconds(60);
  sim::Duration sa_cache_timeout = sim::Duration::seconds(150);
  void scale_timers(std::int64_t factor) {
    sa_advertisement_interval = sa_advertisement_interval * factor;
    sa_cache_timeout = sa_cache_timeout * factor;
  }
  bool timers_enabled = true;
};

class Msdp {
 public:
  using SendSa = std::function<void(net::Ipv4Address peer, const SourceActive&)>;
  /// Peer-RPF oracle: the peer we would accept SAs about `origin_rp` from
  /// (typically derived from the MBGP best path towards the RP).
  using RpfPeer = std::function<net::Ipv4Address(net::Ipv4Address origin_rp)>;
  /// A new (source, group) appeared in the cache (PIM may join it) or
  /// disappeared from it (PIM tears interest down).
  using SaLearned = std::function<void(net::Ipv4Address source,
                                       net::Ipv4Address group,
                                       net::Ipv4Address origin_rp)>;
  using SaExpired = std::function<void(net::Ipv4Address source,
                                       net::Ipv4Address group)>;

  Msdp(sim::Engine& engine, net::Ipv4Address rp_address, Config config);

  void set_send_sa(SendSa fn) { send_sa_ = std::move(fn); }
  void set_rpf_peer(RpfPeer fn) { rpf_peer_ = std::move(fn); }
  void set_sa_learned(SaLearned fn) { sa_learned_ = std::move(fn); }
  void set_sa_expired(SaExpired fn) { sa_expired_ = std::move(fn); }

  void start();

  /// RP-side origination: a local source registered. Re-announced every
  /// advertisement interval until stop_originating is called.
  void originate(net::Ipv4Address source, net::Ipv4Address group);
  void stop_originating(net::Ipv4Address source, net::Ipv4Address group);

  void on_source_active(const SourceActive& message);

  /// Drops a cache entry immediately (fires sa_expired). Used by trace-scale
  /// runs to tear state down explicitly instead of waiting for the timeout.
  void flush(net::Ipv4Address source, net::Ipv4Address group);

  /// Sweeps expired cache entries; public for tests.
  void expire_now();

  /// Re-floods locally originated SAs; public for tests.
  void advertise_now();

  [[nodiscard]] std::vector<SaCacheEntry> sa_cache() const;
  [[nodiscard]] std::size_t cache_size() const { return cache_.size(); }
  [[nodiscard]] bool has_sa(net::Ipv4Address source, net::Ipv4Address group) const;
  [[nodiscard]] net::Ipv4Address rp_address() const { return rp_address_; }
  [[nodiscard]] const Config& config() const { return config_; }

  [[nodiscard]] std::uint64_t sa_sent() const { return sa_sent_; }
  [[nodiscard]] std::uint64_t sa_received() const { return sa_received_; }
  [[nodiscard]] std::uint64_t sa_rpf_failures() const { return sa_rpf_failures_; }

 private:
  using SgKey = std::pair<net::Ipv4Address, net::Ipv4Address>;  ///< (S, G)

  void flood(const SourceActive& message, net::Ipv4Address from_peer);
  [[nodiscard]] int mesh_group_of(net::Ipv4Address peer) const;

  sim::Engine& engine_;
  net::Ipv4Address rp_address_;
  Config config_;
  SendSa send_sa_;
  RpfPeer rpf_peer_;
  SaLearned sa_learned_;
  SaExpired sa_expired_;
  std::map<SgKey, SaCacheEntry> cache_;
  std::set<SgKey> originating_;
  sim::PeriodicTimer advertise_timer_;
  sim::PeriodicTimer expire_timer_;
  std::uint64_t sa_sent_ = 0;
  std::uint64_t sa_received_ = 0;
  std::uint64_t sa_rpf_failures_ = 0;
};

}  // namespace mantra::msdp
