// Capture-to-disk / analyse-later: the deployment split that let Mantra
// archive six months of router state and build the paper's figures off-line.
//
//   $ ./examples/archive_replay [days] [archive.marc | archive-dir] [flags]
//
// With no archive argument, records a [days]-long FIXW run (default 2) into
// /tmp/mantra-archive/fixw.marc with the durable archive sink enabled, then
// throws the live monitor away. Everything printed afterwards — the Fig 3
// usage-count series, the Fig 7 DVMRP route series, the busiest-sessions
// summary table — is rebuilt purely from the bytes on disk. With an archive
// argument, skips recording and analyses that file instead, so a file
// written by fixw_monitor-style deployments (or a previous run of this tool)
// replays without the scenario that produced it.
//
//   --report-out=<path>   re-derive the alert history (default rules) from
//                         the replayed results and write the self-contained
//                         HTML report. Given the directory a live
//                         `fixw_monitor --archive-dir=` run wrote (every
//                         *.marc replayed, target name = file stem), the
//                         report is byte-identical to the live one.
//   --explain[=<rule>[:<target>]]
//                         re-derive alert provenance from the replayed
//                         results and print each matching alert's causal
//                         explanation: the evaluation window with per-cycle
//                         collection facts and the triggering threshold
//                         math. Byte-identical to the live monitor's
//                         explanation of the same run.
//   --explain-out=<path>  write the explanation text there instead of stdout.
//   --mtel=<path>         the run's `.mtel` self-telemetry archive; attaches
//                         the correlated event tail (capture_failed,
//                         target_unreachable, ...) to each explanation and
//                         rebuilds the report's "Monitor health" section.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/archive.hpp"
#include "core/mantra.hpp"
#include "core/provenance.hpp"
#include "core/query.hpp"
#include "core/report.hpp"
#include "core/teltrace.hpp"
#include "workload/scenario.hpp"

using namespace mantra;

namespace {

/// Records the demo scenario to `dir` and returns the archive file path.
std::string record_demo_archive(const std::string& dir, int days) {
  workload::ScenarioConfig config;
  config.seed = 1998;
  config.domains = 6;
  config.hosts_per_domain = 12;
  config.dvmrp_prefixes_per_domain = 20;
  config.report_loss = 0.05;
  config.timer_scale = 10;
  config.full_timers = false;
  config.generator.session_arrivals_per_hour = 30.0;
  config.generator.bursts_per_day = 1.0;

  workload::FixwScenario scenario(config);
  scenario.start();

  core::MantraConfig monitor_config;
  monitor_config.cycle = sim::Duration::minutes(15);
  monitor_config.archive_dir = dir;
  core::Mantra monitor(scenario.engine(), monitor_config);
  monitor.add_target(scenario.network().router(scenario.fixw_node()));
  monitor.start();
  scenario.engine().run_until(sim::TimePoint::start() + sim::Duration::days(days));

  const core::ArchiveWriter* sink = monitor.target_view("fixw").archive();
  std::printf("recorded %zu cycles, %.1f KiB (%.0f bytes/cycle) -> %s\n\n",
              sink->cycles_written(),
              static_cast<double>(sink->bytes_written()) / 1024.0,
              static_cast<double>(sink->bytes_written()) /
                  static_cast<double>(sink->cycles_written()),
              sink->path().c_str());
  return sink->path();
  // The monitor (and with it the writer) is destroyed here: from now on the
  // file is the only thing that survives.
}

/// The §III "interactive table", rebuilt from an archived snapshot instead
/// of a live monitor.
core::SummaryTable busiest_sessions(const core::Snapshot& snapshot,
                                    std::size_t limit) {
  core::SummaryTable table({"group", "density", "senders", "kbps", "active", "age"});
  char buffer[64];
  snapshot.sessions.visit([&](const core::SessionRow& session) {
    std::snprintf(buffer, sizeof buffer, "%.2f", session.total_kbps);
    table.add_row({session.group.to_string(), std::to_string(session.density),
                   std::to_string(session.senders), buffer,
                   session.active ? "yes" : "no", session.age.to_string()});
  });
  table.sort_by(table.column_index("kbps").value(), /*numeric=*/true,
                /*descending=*/true);
  core::SummaryTable trimmed(std::vector<std::string>(table.columns()));
  for (std::size_t i = 0; i < std::min(limit, table.row_count()); ++i) {
    trimmed.add_row(std::vector<std::string>(table.rows()[i]));
  }
  return trimmed;
}

/// Replays one engine target into a report target (name = target name).
core::ReportTargetData replay_target(const core::QueryEngine& engine,
                                     const std::string& name) {
  core::ReportTargetData target;
  target.name = name;
  target.results = engine.replay(name).results;
  std::printf("  %s: %zu archived cycles%s\n", target.name.c_str(),
              target.results.size(),
              engine.has_rollups(name) ? " (rollup sidecar attached)" : "");
  return target;
}

/// Decoded `.mtel` samples for the explanation event tails; empty without a
/// path (the tails are then empty, exactly as live without a SelfMonitor).
std::vector<core::TelemetrySample> load_samples(const std::string& path) {
  if (path.empty()) return {};
  core::TelemetryArchiveReader reader(path);
  if (!reader.recovery().clean) {
    std::fprintf(stderr, "note: .mtel torn tail recovered — %s\n",
                 reader.recovery().reason.c_str());
  }
  return reader.samples();
}

/// The --explain surface: renders matching provenance records to stdout or
/// `out_path`. Returns 0 on success.
int emit_explanations(const core::ReportData& data, const std::string& spec,
                      const std::string& out_path) {
  const std::string text = core::render_explanations(
      data.provenance, core::parse_explain_spec(spec));
  if (out_path.empty()) {
    std::fputs(text.c_str(), stdout);
    return 0;
  }
  std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
  if (out) out << text;
  std::fprintf(stderr, "%s %s\n", out ? "wrote" : "FAILED to write",
               out_path.c_str());
  return out ? 0 : 1;
}

/// Directory mode: every *.marc in `dir` (name order) replayed through one
/// query engine and the default alert rules, rendered to one report — the
/// offline twin of a `fixw_monitor --archive-dir= --report-out=` run.
int report_from_directory(const std::string& dir, const std::string& report_out,
                          const std::vector<core::TelemetrySample>& samples,
                          bool explain, const std::string& explain_spec,
                          const std::string& explain_out) {
  std::vector<std::filesystem::path> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.is_regular_file() && entry.path().extension() == ".marc") {
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  if (files.empty()) {
    std::fprintf(stderr, "no *.marc files in %s\n", dir.c_str());
    return 1;
  }
  std::printf("replaying %zu archive(s) from %s\n", files.size(), dir.c_str());
  core::QueryEngine engine;
  for (const std::filesystem::path& file : files) {
    engine.add_archive(file.stem().string(), file.string());
  }
  std::vector<core::ReportTargetData> targets;
  targets.reserve(files.size());
  for (const std::filesystem::path& file : files) {
    targets.push_back(replay_target(engine, file.stem().string()));
  }
  core::ReportData data = core::report_data_from_replay(
      std::move(targets), core::default_alert_rules(), &samples);
  if (!samples.empty()) {
    // "monitor" is SelfMonitorConfig's default name, which is what a
    // single-monitor fixw_monitor --mtel-out= run carries; the health
    // section then renders byte-identically to the live report.
    data.health = core::monitor_health_from_samples("monitor", samples);
  }
  std::printf("re-derived %zu alert(s) from the archived results\n",
              data.alerts.size());
  int rc = 0;
  if (!report_out.empty()) {
    const bool ok = core::write_html_report(report_out, data);
    std::fprintf(stderr, "%s %s\n", ok ? "wrote" : "FAILED to write",
                 report_out.c_str());
    if (!ok) rc = 1;
  }
  if (explain && emit_explanations(data, explain_spec, explain_out) != 0) {
    rc = 1;
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  std::string report_out;
  std::string explain_spec, explain_out, mtel_path;
  bool explain = false;
  std::vector<const char*> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--report-out=", 13) == 0) {
      report_out = argv[i] + 13;
    } else if (std::strcmp(argv[i], "--explain") == 0) {
      explain = true;
    } else if (std::strncmp(argv[i], "--explain=", 10) == 0) {
      explain = true;
      explain_spec = argv[i] + 10;
    } else if (std::strncmp(argv[i], "--explain-out=", 14) == 0) {
      explain = true;
      explain_out = argv[i] + 14;
    } else if (std::strncmp(argv[i], "--mtel=", 7) == 0) {
      mtel_path = argv[i] + 7;
    } else {
      positional.push_back(argv[i]);
    }
  }
  const int days = positional.size() > 0 ? std::atoi(positional[0]) : 2;
  const std::string path =
      positional.size() > 1 ? positional[1]
                            : record_demo_archive("/tmp/mantra-archive", days);
  const std::vector<core::TelemetrySample> samples = load_samples(mtel_path);

  if (std::filesystem::is_directory(path)) {
    if (report_out.empty() && !explain) {
      std::fprintf(stderr,
                   "a directory argument needs --report-out=<path> "
                   "or --explain\n");
      return 2;
    }
    return report_from_directory(path, report_out, samples, explain,
                                 explain_spec, explain_out);
  }

  // --- Everything below reads only the archive file, served through the
  // query engine (the same path dashboards use). ---
  core::QueryEngine engine;
  const std::string target_name = std::filesystem::path(path).stem().string();
  engine.add_archive(target_name, path);
  const core::ArchiveReader& reader = *engine.reader(target_name);
  if (!reader.recovery().clean) {
    std::printf("note: torn tail recovered — dropped %llu bytes (%s)\n",
                static_cast<unsigned long long>(reader.recovery().bytes_dropped),
                reader.recovery().reason.c_str());
  }
  if (reader.empty()) {
    std::printf("archive %s holds no complete cycles\n", path.c_str());
    return 1;
  }
  std::printf("replaying %zu archived cycles: %s .. %s\n\n", reader.size(),
              reader.first_time().to_string().c_str(),
              reader.last_time().to_string().c_str());

  const core::ReplayRun replay = engine.replay(target_name);

  // Fig 3: usage counts over time, from disk.
  core::AsciiChart usage;
  const core::TimeSeries sessions =
      core::series_from(replay.results, "sessions", [](const core::CycleResult& r) {
        return static_cast<double>(r.usage.sessions);
      });
  const core::TimeSeries participants = core::series_from(
      replay.results, "participants", [](const core::CycleResult& r) {
        return static_cast<double>(r.usage.participants);
      });
  usage.add_series(sessions, 's');
  usage.add_series(participants, 'p');
  std::printf("Fig 3 — usage counts (replayed from archive)\n%s\n",
              usage.render().c_str());

  // Fig 7: DVMRP valid routes over time, from disk.
  core::AsciiChart routes;
  const core::TimeSeries valid_routes = core::series_from(
      replay.results, "dvmrp_valid_routes", [](const core::CycleResult& r) {
        return static_cast<double>(r.dvmrp_valid_routes);
      });
  routes.add_series(valid_routes, '*');
  std::printf("Fig 7 — DVMRP valid routes (replayed from archive)\n%s\n",
              routes.render().c_str());
  std::printf("route changes total: %llu, spike regime resets: %zu\n\n",
              static_cast<unsigned long long>(replay.route_monitor.total_changes()),
              replay.spike_regime_resets);

  // The interactive table, as of the final archived instant.
  const core::Snapshot last = reader.snapshot_at(reader.last_time());
  std::printf("busiest sessions at %s (from archive)\n%s\n",
              last.captured.to_string().c_str(),
              busiest_sessions(last, 10).render().c_str());
  std::printf("CSV (RFC 4180):\n%s\n", busiest_sessions(last, 5).to_csv().c_str());

  // Compaction: re-frame sparsely and drop the first half of the history.
  core::CompactionOptions compaction;
  compaction.keyframe_interval = 192;
  compaction.drop_before = reader.first_time() +
                           (reader.last_time() - reader.first_time()) / 2;
  const core::CompactionStats stats =
      core::compact_archive(path, path + ".compact", compaction);
  std::printf("compacted %zu -> %zu cycles (%zu dropped), %llu -> %llu bytes, "
              "rollup sidecar: %zu hourly + %zu daily buckets\n",
              stats.cycles_in, stats.cycles_out, stats.cycles_dropped,
              static_cast<unsigned long long>(stats.bytes_in),
              static_cast<unsigned long long>(stats.bytes_out),
              stats.rollup_hour_buckets, stats.rollup_day_buckets);

  // Serve a coarse query from the compacted file: with the sidecar attached
  // an unfiltered per-hour question decodes zero archive records.
  core::QueryEngine compacted;
  compacted.add_archive(target_name, path + ".compact");
  core::Query sample;
  sample.target = target_name;
  sample.metric = core::QueryMetric::sessions;
  sample.resolution = core::QueryResolution::hour;
  sample.aggregate = core::QueryAggregate::mean;
  const core::QueryResult answer = compacted.run(sample);
  std::printf("per-hour mean sessions over the compacted half: %zu points, "
              "%s, %llu records decoded\n",
              answer.points.size(),
              answer.from_rollup ? "rollup-served" : "raw scan",
              static_cast<unsigned long long>(answer.records_decoded));
  const core::BlockCache::Stats cache = engine.cache().stats();
  std::printf("replay block cache: %llu hits / %llu misses (%zu blocks resident)\n",
              static_cast<unsigned long long>(cache.hits),
              static_cast<unsigned long long>(cache.misses), cache.entries);

  int rc = 0;
  if (!report_out.empty() || explain) {
    core::ReportTargetData target;
    target.name = std::filesystem::path(path).stem().string();
    target.results = replay.results;
    const core::ReportData data = core::report_data_from_replay(
        {std::move(target)}, core::default_alert_rules(), &samples);
    if (!report_out.empty()) {
      const bool ok = core::write_html_report(report_out, data);
      std::fprintf(stderr, "%s %s (%zu alerts re-derived)\n",
                   ok ? "wrote" : "FAILED to write", report_out.c_str(),
                   data.alerts.size());
      if (!ok) rc = 1;
    }
    if (explain && emit_explanations(data, explain_spec, explain_out) != 0) {
      rc = 1;
    }
  }
  return rc;
}
