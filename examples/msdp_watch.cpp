// The "next-generation protocols" angle of the paper's title: watching the
// post-transition control plane — MSDP Source-Active caches, PIM-SM tree
// state and MBGP reachability — none of which had usable SNMP MIBs, which
// is exactly why Mantra scrapes router CLIs.
//
//   $ ./examples/msdp_watch
//
// Runs an all-native (sparse-only) deployment, starts cross-domain
// sessions, and shows what the monitor sees at each RP: the SA cache
// filling, (S,G) joins following the sources, and the scraped
// `show ip msdp sa-cache` text that the parser consumes.
#include <cstdio>

#include "core/collect.hpp"
#include "core/parse.hpp"
#include "router/cli.hpp"
#include "workload/scenario.hpp"

using namespace mantra;

int main() {
  workload::ScenarioConfig config;
  config.seed = 2001;
  config.domains = 6;
  config.hosts_per_domain = 8;
  config.dvmrp_prefixes_per_domain = 4;
  config.report_loss = 0.0;
  config.timer_scale = 1;
  config.full_timers = true;  // protocol-faithful: real register/SA timers
  config.generator.session_arrivals_per_hour = 0.0;
  config.generator.bursts_per_day = 0.0;
  config.generator.sparse_probability = 1.0;  // fully native multicast

  workload::FixwScenario scenario(config);
  scenario.start();
  scenario.engine().run_until(sim::TimePoint::start() + sim::Duration::minutes(5));

  // Three cross-domain sessions, senders in different domains.
  scenario.generator().create_session_now(false, /*force_sender=*/true,
                                          sim::Duration::hours(4), 6);
  scenario.generator().create_session_now(false, true, sim::Duration::hours(4), 3);
  scenario.generator().create_session_now(false, true, sim::Duration::hours(4), 10);
  scenario.engine().run_until(scenario.engine().now() + sim::Duration::minutes(10));

  std::printf("=== MSDP SA caches across the RP mesh ===\n\n");
  for (net::NodeId border : scenario.border_nodes()) {
    const auto* router = scenario.network().router(border);
    if (router->msdp() == nullptr) continue;
    std::printf("%s: %zu SA entries (sent %llu, received %llu, peer-RPF drops %llu)\n",
                router->hostname().c_str(), router->msdp()->cache_size(),
                static_cast<unsigned long long>(router->msdp()->sa_sent()),
                static_cast<unsigned long long>(router->msdp()->sa_received()),
                static_cast<unsigned long long>(router->msdp()->sa_rpf_failures()));
  }

  const auto* ucsb = scenario.network().router(scenario.ucsb_node());
  std::printf("\n=== Scraped from %s ===\n\n%s\n", ucsb->hostname().c_str(),
              router::cli::show_ip_msdp_sa_cache(*ucsb, scenario.engine().now()).c_str());

  // Feed the scrape through the production parser, as a monitoring cycle
  // would.
  const core::CaptureReport report =
      core::Collector().capture(*ucsb, scenario.engine().now());
  for (const core::RawCapture& capture : report.captures) {
    if (capture.command != "show ip msdp sa-cache" || !capture.ok()) continue;
    core::SaTable sa_table;
    std::vector<std::string> warnings;
    core::parse_msdp_sa_cache(capture.clean_text, sa_table, &warnings);
    std::printf("parser: %zu SA rows, %zu warnings\n", sa_table.size(),
                warnings.size());
    sa_table.visit([](const core::SaRow& row) {
      std::printf("  (%s, %s) via RP %s%s\n", row.source.to_string().c_str(),
                  row.group.to_string().c_str(), row.origin_rp.to_string().c_str(),
                  row.via_peer.is_unspecified() ? " [local]" : "");
    });
  }

  // PIM tree state at a last-hop RP.
  std::printf("\n=== PIM state at %s ===\n\n", ucsb->hostname().c_str());
  for (const pim::RouteEntry& entry : ucsb->pim()->entries()) {
    std::printf("(%s, %s)%s oifs=%zu%s%s\n",
                entry.wildcard ? "*" : entry.source.to_string().c_str(),
                entry.group.to_string().c_str(),
                entry.wildcard ? " [shared tree]" : " [SPT]", entry.oifs.size(),
                entry.spt ? " spt-bit" : "",
                entry.register_state ? " registering" : "");
  }

  // MBGP provides the interdomain RPF routes that replaced DVMRP.
  std::printf("\n=== MBGP Loc-RIB at fixw ===\n\n%s",
              router::cli::show_ip_mbgp(*scenario.network().router(scenario.fixw_node()),
                                        scenario.engine().now()).c_str());
  return 0;
}
