// Quickstart: build a small FIXW-style multicast internetwork, run a few
// hours of simulated workload, point Mantra at the exchange point and the
// campus router, and print what the monitor sees.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "core/mantra.hpp"
#include "router/mtrace.hpp"
#include "workload/scenario.hpp"

using namespace mantra;

int main() {
  // A small instance of the paper's deployment: 6 domains hanging off the
  // FIXW exchange point, protocol-faithful timers (RFC clock rates).
  workload::ScenarioConfig config;
  config.seed = 7;
  config.domains = 6;
  config.hosts_per_domain = 12;
  config.dvmrp_prefixes_per_domain = 10;
  config.report_loss = 0.02;
  config.timer_scale = 1;
  config.full_timers = true;
  config.generator.session_arrivals_per_hour = 30.0;
  config.generator.bursts_per_day = 0.0;

  workload::FixwScenario scenario(config);
  scenario.start();

  // Mantra watches FIXW and the campus router every 15 minutes.
  core::MantraConfig monitor_config;
  monitor_config.cycle = sim::Duration::minutes(15);
  core::Mantra mantra(scenario.engine(), monitor_config);
  mantra.add_target(scenario.network().router(scenario.fixw_node()));
  mantra.add_target(scenario.network().router(scenario.ucsb_node()));
  mantra.start();

  // Run four simulated hours.
  scenario.engine().run_until(sim::TimePoint::start() + sim::Duration::hours(4));

  std::printf("=== Mantra overview after %s of monitoring ===\n\n",
              scenario.engine().now().to_string().c_str());
  std::printf("%s\n", mantra.overview().render().c_str());

  std::printf("=== Busiest sessions at fixw ===\n\n%s\n",
              mantra.busiest_sessions("fixw", 10).render().c_str());

  std::printf("=== Top senders at fixw ===\n\n%s\n",
              mantra.top_senders("fixw", 10).render().c_str());

  // The interactive-graph interface: overlay sessions vs active sessions.
  const core::TimeSeries sessions = mantra.series(
      "fixw", "sessions", [](const core::CycleResult& r) {
        return static_cast<double>(r.usage.sessions);
      });
  const core::TimeSeries active = mantra.series(
      "fixw", "active sessions", [](const core::CycleResult& r) {
        return static_cast<double>(r.usage.active_sessions);
      });
  core::AsciiChart chart(72, 14);
  chart.add_series(sessions, '*');
  chart.add_series(active, 'o');
  std::printf("=== Sessions at fixw (overlaid, as in Mantra's graph applet) ===\n\n%s\n",
              chart.render().c_str());

  // Aggregated multi-point view (the paper's §V future work).
  const core::UsageStats aggregate = mantra.aggregate_usage();
  std::printf("Aggregate across both collection points: %d sessions, "
              "%d participants, %.1f kbps\n",
              aggregate.sessions, aggregate.participants, aggregate.bandwidth_kbps);

  // mtrace: the reverse-path debugging tool, against the busiest session.
  const auto& fixw_snapshot = mantra.target_view("fixw").latest_snapshot();
  core::PairRow busiest;
  fixw_snapshot.pairs.visit([&](const core::PairRow& row) {
    if (row.current_kbps > busiest.current_kbps) busiest = row;
  });
  if (!busiest.source.is_unspecified()) {
    // Trace from a host in the last domain back towards the busiest source.
    const net::NodeId receiver =
        scenario.network().group_members(busiest.group) != nullptr &&
                !scenario.network().group_members(busiest.group)->empty()
            ? *scenario.network().group_members(busiest.group)->begin()
            : net::kInvalidNode;
    if (receiver != net::kInvalidNode) {
      const auto trace = router::mtrace(scenario.network(), receiver,
                                        busiest.source, busiest.group);
      std::printf("=== mtrace towards the busiest source (%s, %s) ===\n\n%s\n",
                  busiest.source.to_string().c_str(),
                  busiest.group.to_string().c_str(), trace.to_string().c_str());
    }
  }

  // Show a slice of what the collector actually scrapes.
  const core::CaptureReport report = core::Collector().capture(
      *scenario.network().router(scenario.fixw_node()), scenario.engine().now());
  std::printf("\n=== Raw capture (first 12 lines of 'show ip dvmrp route') ===\n\n");
  const core::RawCapture* dvmrp = report.find("show ip dvmrp route");
  if (dvmrp != nullptr && dvmrp->ok()) {
    int lines = 0;
    for (char c : dvmrp->clean_text) {
      std::putchar(c);
      if (c == '\n' && ++lines == 12) break;
    }
  } else {
    std::printf("(capture %s)\n",
                dvmrp ? core::to_string(dvmrp->status) : "missing");
  }
  return 0;
}
