// Fleet-scale monitoring (ROADMAP north-star): N sharded Mantra monitors,
// each watching its own simulated exchange-point topology, merged into one
// fleet-wide view by core/fleet's FleetAggregator.
//
//   $ ./examples/fleet_monitor [shards] [targets_per_shard] [days] [failure_rate]
//       (defaults: 4 shards x 4 targets, 3 days, no failures)
//
// Each shard is fully autonomous — its own scenario, engine, transports,
// alert engine and (optionally) .marc archives — and the aggregation tier
// only reads, so the fleet view is a pure (shard, name)-ordered merge.
//
// Flags:
//   --report-out=<path>         write the fleet HTML report (per-shard
//                               health tiles, merged alert table, top-K
//                               busiest targets) at the end of the run
//   --archive-dir=<dir>         per-shard durable archives under
//                               <dir>/shard-NN/<router>.marc
//   --replay-report-out=<path>  after the run, rebuild the fleet report
//                               offline from the archives via QueryEngine
//                               and write it here; the bytes must equal the
//                               live report (the CI job cmp's the two)
//   --self-telemetry            enable core/telemetry + a per-shard
//                               SelfMonitor; with --archive-dir each shard
//                               streams its samples to
//                               <dir>/<shard>/monitor.mtel and the replay
//                               rebuilds each "Monitor health" section from
//                               that file (still byte-identical)
//   --metrics-out=<path>        write the fleet-federated Prometheus
//                               exposition (counters summed across shards,
//                               gauges/unmergeable histograms tagged
//                               shard="..."); the exposition is lint-checked
//                               and violations fail the run
//   --events-out=<path>         write the fleet-merged logfmt event stream
//                               ((sim_ts, shard, seq) order, shard= field)
//   --explain-out=<path>        write the fleet-wide alert explanations
//                               (core/provenance, every shard's records
//                               merged (fired_at, shard, rule, target))
//   --replay-explain-out=<path> rebuild the explanations offline from the
//                               archives (+ per-shard .mtel event tails)
//                               and write them here; with --explain-out the
//                               two are compared and a mismatch fails the
//                               run
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/fleet.hpp"
#include "core/mantra.hpp"
#include "core/provenance.hpp"
#include "core/query.hpp"
#include "core/report.hpp"
#include "core/transport.hpp"
#include "workload/scenario.hpp"

using namespace mantra;

namespace {

std::string shard_name(std::size_t index) {
  char buffer[16];
  std::snprintf(buffer, sizeof buffer, "shard-%02zu", index);
  return buffer;
}

/// One autonomous shard: its own exchange-point scenario (own engine and
/// seed) plus the Mantra instance that monitors it.
struct Shard {
  std::string name;
  std::unique_ptr<workload::FixwScenario> scenario;
  std::unique_ptr<core::Mantra> monitor;
};

}  // namespace

int main(int argc, char** argv) {
  std::string report_out;
  std::string archive_dir;
  std::string replay_report_out;
  std::string metrics_out;
  std::string events_out;
  std::string explain_out;
  std::string replay_explain_out;
  bool self_telemetry = false;
  std::vector<const char*> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--report-out=", 13) == 0) {
      report_out = argv[i] + 13;
    } else if (std::strncmp(argv[i], "--archive-dir=", 14) == 0) {
      archive_dir = argv[i] + 14;
    } else if (std::strncmp(argv[i], "--replay-report-out=", 20) == 0) {
      replay_report_out = argv[i] + 20;
    } else if (std::strncmp(argv[i], "--explain-out=", 14) == 0) {
      explain_out = argv[i] + 14;
    } else if (std::strncmp(argv[i], "--replay-explain-out=", 21) == 0) {
      replay_explain_out = argv[i] + 21;
    } else if (std::strncmp(argv[i], "--metrics-out=", 14) == 0) {
      metrics_out = argv[i] + 14;
    } else if (std::strncmp(argv[i], "--events-out=", 13) == 0) {
      events_out = argv[i] + 13;
    } else if (std::strcmp(argv[i], "--self-telemetry") == 0) {
      self_telemetry = true;
    } else {
      positional.push_back(argv[i]);
    }
  }
  const bool telemetry_on =
      self_telemetry || !metrics_out.empty() || !events_out.empty();
  const std::size_t shard_count =
      positional.size() > 0 ? static_cast<std::size_t>(std::atoi(positional[0])) : 4;
  const std::size_t targets_per_shard =
      positional.size() > 1 ? static_cast<std::size_t>(std::atoi(positional[1])) : 4;
  const int days = positional.size() > 2 ? std::atoi(positional[2]) : 3;
  const double failure_rate = positional.size() > 3 ? std::atof(positional[3]) : 0.0;
  if ((!replay_report_out.empty() || !replay_explain_out.empty()) &&
      archive_dir.empty()) {
    std::fprintf(stderr,
                 "--replay-report-out/--replay-explain-out require "
                 "--archive-dir\n");
    return 1;
  }

  // --- build the shards ---
  std::vector<Shard> shards;
  for (std::size_t s = 0; s < shard_count; ++s) {
    workload::ScenarioConfig config;
    config.seed = 1998 + s;  // independent workload per shard
    // One exchange point plus enough border domains to reach the target
    // count (targets = fixw hub + one border router per domain).
    config.domains = std::max<std::size_t>(1, targets_per_shard - 1);
    config.hosts_per_domain = 4;
    config.dvmrp_prefixes_per_domain = 12;
    config.report_loss = 0.08;
    config.timer_scale = 40;
    config.full_timers = false;
    config.generator.session_arrivals_per_hour = 40.0;
    config.generator.bursts_per_day = 1.0;

    Shard shard;
    shard.name = shard_name(s);
    shard.scenario = std::make_unique<workload::FixwScenario>(config);
    shard.scenario->schedule_transition(
        sim::TimePoint::start() + sim::Duration::days(std::max(1, days / 2)),
        sim::Duration::days(std::max(1, days / 5)), 0.85);

    core::MantraConfig monitor_config;
    monitor_config.cycle = sim::Duration::minutes(30);
    monitor_config.alerts.enabled = true;
    monitor_config.telemetry.enabled = telemetry_on;
    if (!archive_dir.empty()) {
      monitor_config.archive_dir = archive_dir + "/" + shard.name;
    }
    if (self_telemetry) {
      monitor_config.self.enabled = true;
      monitor_config.self.name = shard.name;
      if (!archive_dir.empty()) {
        monitor_config.self.path =
            archive_dir + "/" + shard.name + "/monitor.mtel";
      }
    }
    core::TransportFactory factory;
    if (failure_rate > 0.0) {
      const std::uint64_t seed = config.seed;
      factory = [seed, failure_rate](const std::string& name) {
        return std::make_unique<core::FaultInjectingTransport>(
            core::per_target_seed(seed, name),
            core::FaultProfile::command_failure_rate(failure_rate));
      };
    }
    shard.monitor = std::make_unique<core::Mantra>(
        shard.scenario->engine(), monitor_config, std::move(factory));
    shard.monitor->add_target(
        shard.scenario->network().router(shard.scenario->fixw_node()));
    for (std::size_t t = 1; t < targets_per_shard; ++t) {
      shard.monitor->add_target(shard.scenario->network().router(
          shard.scenario->border_nodes().at(t - 1)));
    }
    shard.scenario->start();
    shard.monitor->start();
    shards.push_back(std::move(shard));
  }

  // --- run every shard's engine in day-sized lockstep ---
  for (int day = 1; day <= days; ++day) {
    std::size_t live_sessions = 0;
    for (Shard& shard : shards) {
      shard.scenario->engine().run_until(sim::TimePoint::start() +
                                         sim::Duration::days(day));
      live_sessions += shard.scenario->generator().live_session_count();
    }
    std::fprintf(stderr, "day %d/%d: %zu live sessions across %zu shards\n",
                 day, days, live_sessions, shards.size());
  }

  // --- aggregate ---
  core::FleetAggregator fleet;
  for (const Shard& shard : shards) {
    fleet.add_shard(shard.name, *shard.monitor);
  }
  const core::FleetStatus status = fleet.status();
  std::printf("=== Fleet shard health ===\n\n%s\n",
              status.shard_table().render().c_str());
  std::printf("=== Per-target status (%zu targets) ===\n\n%s\n",
              status.targets.size(), status.to_table().render().c_str());

  const auto write_file = [](const std::string& path,
                             const std::string& content) {
    FILE* out = std::fopen(path.c_str(), "wb");
    const bool ok = out != nullptr &&
                    std::fwrite(content.data(), 1, content.size(), out) ==
                        content.size();
    if (out != nullptr) std::fclose(out);
    std::fprintf(stderr, "%s %s\n", ok ? "wrote" : "FAILED to write",
                 path.c_str());
    return ok;
  };

  if (!metrics_out.empty()) {
    const std::string exposition = core::federated_prometheus_text(fleet);
    const std::vector<std::string> violations =
        core::prometheus_lint(exposition);
    for (const std::string& violation : violations) {
      std::fprintf(stderr, "federated exposition lint: %s\n",
                   violation.c_str());
    }
    if (!write_file(metrics_out, exposition) || !violations.empty()) return 1;
  }
  if (!events_out.empty()) {
    if (!write_file(events_out, core::federated_events_logfmt(fleet))) return 1;
  }

  std::string live_report;
  if (!report_out.empty()) {
    live_report =
        core::render_fleet_html_report(core::fleet_report_data_from(fleet));
    FILE* out = std::fopen(report_out.c_str(), "wb");
    const bool ok = out != nullptr &&
                    std::fwrite(live_report.data(), 1, live_report.size(),
                                out) == live_report.size();
    if (out != nullptr) std::fclose(out);
    std::fprintf(stderr, "%s %s\n", ok ? "wrote" : "FAILED to write",
                 report_out.c_str());
    if (!ok) return 1;
  }

  std::string live_explain;
  if (!explain_out.empty()) {
    const core::FleetProvenance merged = core::fleet_provenance(fleet);
    live_explain = core::render_explanations(merged.records,
                                             core::ExplainFilter{},
                                             &merged.shards);
    if (!write_file(explain_out, live_explain)) return 1;
  }

  if (replay_report_out.empty() && replay_explain_out.empty()) return 0;

  // --- offline rebuild from the archives (QueryEngine per shard) ---
  std::vector<std::pair<std::string, std::vector<std::string>>> layout;
  for (const Shard& shard : shards) {
    layout.emplace_back(shard.name, shard.monitor->target_names());
  }
  shards.clear();  // destroys the monitors, flushing every .marc archive

  std::vector<core::FleetShardReplay> replayed;
  for (const auto& [name, targets] : layout) {
    core::QueryEngine engine;
    core::FleetShardReplay shard;
    shard.shard = name;
    shard.rules = core::default_alert_rules();
    for (const std::string& target : targets) {
      engine.add_archive(
          target, archive_dir + "/" + name + "/" + target + ".marc");
      shard.targets.push_back({target, engine.replay(target).results});
    }
    if (self_telemetry) {
      // The "Monitor health" section re-derived from the shard's `.mtel`:
      // the codec is lossless and the rule evaluation is a pure function of
      // the samples, so the replayed section renders byte-identically. The
      // same samples feed the provenance event tails.
      core::TelemetryArchiveReader reader(archive_dir + "/" + name +
                                          "/monitor.mtel");
      shard.health = core::monitor_health_from_samples(name, reader.samples());
      shard.samples = reader.samples();
    }
    replayed.push_back(std::move(shard));
  }
  const core::FleetReportData offline_data =
      core::fleet_report_data_from_replay(std::move(replayed));
  if (!replay_report_out.empty()) {
    const std::string offline = core::render_fleet_html_report(offline_data);
    if (!write_file(replay_report_out, offline)) return 1;
    if (!live_report.empty()) {
      std::fprintf(stderr, "live vs replay fleet report: %s\n",
                   live_report == offline ? "byte-identical" : "MISMATCH");
      if (live_report != offline) return 1;
    }
  }
  if (!replay_explain_out.empty()) {
    const core::FleetProvenance merged =
        core::fleet_provenance_from(offline_data);
    const std::string offline_explain = core::render_explanations(
        merged.records, core::ExplainFilter{}, &merged.shards);
    if (!write_file(replay_explain_out, offline_explain)) return 1;
    if (!live_explain.empty()) {
      std::fprintf(stderr, "live vs replay fleet explanations: %s\n",
                   live_explain == offline_explain ? "byte-identical"
                                                   : "MISMATCH");
      if (live_explain != offline_explain) return 1;
    }
  }
  return 0;
}
