// The paper's headline deployment: Mantra watching the FIXW exchange point
// and the UCSB campus mrouted across the infrastructure transition.
//
//   $ ./examples/fixw_monitor [days] [failure_rate] [flags]    (default 14, 0)
//
// Runs the trace-scale FIXW scenario with the transition scheduled mid-run,
// monitors both collection points, and emits the paper's series as CSV plus
// overlaid ASCII charts — the terminal equivalent of Mantra's web applets.
//
// Pass a nonzero failure rate as the second argument to collect over a
// faulty telnet path (the paper's reality): failed captures carry the
// previous cycle's tables forward and the overview reports target health.
//
//   $ ./examples/fixw_monitor 14 0.2     (14 days, 20% command failures)
//
// Self-instrumentation flags (any of these enables core/telemetry):
//   --metrics-out=<path>   write Prometheus metrics exposition on exit
//   --trace-out=<path>     write Chrome trace_event JSON (chrome://tracing)
//   --mtel-out=<path>      durable self-telemetry: sample the full metric
//                          registry + event tail into a `.mtel` archive every
//                          cycle and evaluate the self-monitoring rule pack;
//                          the HTML report (--report-out=) gains a "Monitor
//                          health" section rendered from those samples
// With telemetry on, the monitor-of-the-monitor status table prints each
// simulated day and the run ends with the final status plus the tail of the
// structured event log.
//
// Operator-facing observability (core/alert + core/report):
//   --report-out=<path>    enable the default alert rules and write the
//                          self-contained HTML report (plots, tables, alert
//                          history) at the end of the run
//   --report-every=<N>     also refresh the report every N cycles while
//                          running (live dashboard semantics; default: only
//                          the final write)
//   --archive-dir=<dir>    durable .marc archive per target; replaying
//                          those files through archive_replay --report-out=
//                          reproduces this run's report byte-for-byte
//   --explain-out=<path>   enable the alert rules and write every fired
//                          alert's causal explanation (core/provenance) as
//                          text; `archive_replay --explain` over the run's
//                          --archive-dir (+ --mtel= for the event tails)
//                          reconstructs the same bytes
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/mantra.hpp"
#include "core/provenance.hpp"
#include "core/report.hpp"
#include "core/transport.hpp"
#include "workload/scenario.hpp"

using namespace mantra;

int main(int argc, char** argv) {
  std::string metrics_out;
  std::string trace_out;
  std::string mtel_out;
  std::string report_out;
  std::string explain_out;
  std::string archive_dir;
  std::size_t report_every = 0;
  std::vector<const char*> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--metrics-out=", 14) == 0) {
      metrics_out = argv[i] + 14;
    } else if (std::strncmp(argv[i], "--trace-out=", 12) == 0) {
      trace_out = argv[i] + 12;
    } else if (std::strncmp(argv[i], "--mtel-out=", 11) == 0) {
      mtel_out = argv[i] + 11;
    } else if (std::strncmp(argv[i], "--report-out=", 13) == 0) {
      report_out = argv[i] + 13;
    } else if (std::strncmp(argv[i], "--explain-out=", 14) == 0) {
      explain_out = argv[i] + 14;
    } else if (std::strncmp(argv[i], "--report-every=", 15) == 0) {
      report_every = static_cast<std::size_t>(std::atoi(argv[i] + 15));
    } else if (std::strncmp(argv[i], "--archive-dir=", 14) == 0) {
      archive_dir = argv[i] + 14;
    } else {
      positional.push_back(argv[i]);
    }
  }
  const int days = positional.size() > 0 ? std::atoi(positional[0]) : 14;
  const double failure_rate = positional.size() > 1 ? std::atof(positional[1]) : 0.0;
  const bool telemetry_on =
      !metrics_out.empty() || !trace_out.empty() || !mtel_out.empty();

  workload::ScenarioConfig config;
  config.seed = 1998;
  config.domains = 10;
  config.hosts_per_domain = 30;
  config.dvmrp_prefixes_per_domain = 25;
  config.report_loss = 0.08;
  config.timer_scale = 40;
  config.full_timers = false;
  config.generator.session_arrivals_per_hour = 40.0;
  config.generator.bursts_per_day = 1.0;

  workload::FixwScenario scenario(config);
  // Transition in the middle of the run so both regimes are visible.
  scenario.schedule_transition(
      sim::TimePoint::start() + sim::Duration::days(days / 2),
      sim::Duration::days(std::max(1, days / 5)), 0.85);
  if (failure_rate > 0.0) {
    // The faulty fixture also replays the Fig 9 incident: a misconfigured
    // redistribution dumps unicast routes into the UCSB border's DVMRP
    // table mid-run, so the spike detector (and the report's spike
    // annotations) have something real to call out.
    scenario.schedule_route_injection(
        sim::TimePoint::start() + sim::Duration::days(days / 2) +
            sim::Duration::hours(14),
        1500, sim::Duration::hours(6));
  }

  core::MantraConfig monitor_config;
  monitor_config.cycle = sim::Duration::minutes(30);
  monitor_config.telemetry.enabled = telemetry_on;
  monitor_config.alerts.enabled = !report_out.empty() || !explain_out.empty();
  monitor_config.archive_dir = archive_dir;
  if (!mtel_out.empty()) {
    monitor_config.self.enabled = true;
    monitor_config.self.path = mtel_out;
  }
  core::TransportFactory factory;
  if (failure_rate > 0.0) {
    // Every target collects over its own faulty telnet path, each with an
    // independent fault stream derived from the scenario seed.
    factory = [&config, failure_rate](const std::string& name) {
      return std::make_unique<core::FaultInjectingTransport>(
          core::per_target_seed(config.seed, name),
          core::FaultProfile::command_failure_rate(failure_rate));
    };
  }
  core::Mantra mantra(scenario.engine(), monitor_config, std::move(factory));
  mantra.add_target(scenario.network().router(scenario.fixw_node()));
  mantra.add_target(scenario.network().router(scenario.ucsb_node()));

  if (!report_out.empty() && report_every > 0) {
    // Live dashboard semantics: rewrite the report every N cycles so an
    // operator refreshing the file sees the run as it happens.
    mantra.set_cycle_hook([&mantra, &report_out, report_every](std::size_t cycle) {
      if (cycle % report_every == 0) {
        core::write_html_report(report_out, core::report_data_from(mantra));
      }
    });
  }

  scenario.start();
  mantra.start();
  for (int day = 1; day <= days; ++day) {
    scenario.engine().run_until(sim::TimePoint::start() + sim::Duration::days(day));
    std::fprintf(stderr, "day %d/%d: %zu live sessions\n", day, days,
                 scenario.generator().live_session_count());
    if (telemetry_on) {
      std::fprintf(stderr, "%s\n", mantra.status().to_table().render().c_str());
    }
  }

  const auto sessions = mantra.series("fixw", "sessions", [](const core::CycleResult& r) {
    return static_cast<double>(r.usage.sessions);
  });
  const auto participants = mantra.series("fixw", "participants", [](const core::CycleResult& r) {
    return static_cast<double>(r.usage.participants);
  });
  const auto senders = mantra.series("fixw", "senders", [](const core::CycleResult& r) {
    return static_cast<double>(r.usage.senders);
  });
  const auto routes_fixw = mantra.series("fixw", "dvmrp_routes", [](const core::CycleResult& r) {
    return static_cast<double>(r.dvmrp_valid_routes);
  });
  const auto routes_ucsb = mantra.series("ucsb-gw", "dvmrp_routes", [](const core::CycleResult& r) {
    return static_cast<double>(r.dvmrp_valid_routes);
  });

  std::printf("=== Usage at FIXW: participants (*) overlaid with sessions (o) ===\n\n");
  core::AsciiChart usage_chart(76, 16);
  usage_chart.add_series(participants, '*');
  usage_chart.add_series(sessions, 'o');
  std::printf("%s\n", usage_chart.render().c_str());

  std::printf("=== DVMRP routes: UCSB (u) vs FIXW (f) ===\n\n");
  core::AsciiChart route_chart(76, 12);
  route_chart.add_series(routes_ucsb, 'u');
  route_chart.add_series(routes_fixw, 'f');
  std::printf("%s\n", route_chart.render().c_str());

  std::printf("=== Mantra overview (latest cycle) ===\n\n%s\n",
              mantra.overview().render().c_str());

  if (failure_rate > 0.0) {
    for (const std::string& name : mantra.target_names()) {
      const core::Mantra::TargetView view = mantra.target_view(name);
      std::size_t stale_cycles = 0;
      std::size_t failed_commands = 0;
      for (const core::CycleResult& result : view.results()) {
        if (result.stale) ++stale_cycles;
        failed_commands += result.collection_failures;
      }
      std::printf("collection health at %s: %s (%zu/%zu cycles stale, "
                  "%zu failed commands, %zu dark cycles pending)\n",
                  name.c_str(), core::to_string(view.health()),
                  stale_cycles, view.results().size(), failed_commands,
                  view.consecutive_failures());
    }
    std::printf("\n");
  }

  // CSV export for external plotting (the archive Mantra kept for off-line
  // analysis).
  std::printf("=== sessions.csv (first lines) ===\n");
  const std::string csv = sessions.to_csv();
  std::size_t shown = 0;
  for (std::size_t i = 0; i < csv.size() && shown < 6; ++i) {
    std::putchar(csv[i]);
    if (csv[i] == '\n') ++shown;
  }

  // Storage accounting: the delta log vs naive full snapshots.
  const core::DataLogger& logger = mantra.target_view("fixw").logger();
  std::printf("\n=== Data logger ===\ncycles recorded: %zu\n"
              "stored (delta codec): %llu bytes\nnaive (full snapshots): %llu bytes\n"
              "savings: %.1fx\n",
              logger.cycle_count(),
              static_cast<unsigned long long>(logger.stored_bytes()),
              static_cast<unsigned long long>(logger.naive_bytes()),
              static_cast<double>(logger.naive_bytes()) /
                  static_cast<double>(logger.stored_bytes()));
  std::printf("\nsenders at FIXW (last cycle): %.0f\n",
              senders.points().empty() ? 0.0 : senders.points().back().value);

  if (telemetry_on) {
    std::printf("\n=== Monitor status (end of run) ===\n\n%s\n",
                mantra.status().to_table().render().c_str());
    const core::Telemetry& telemetry = mantra.telemetry();
    const std::string events = telemetry.events().logfmt(12);
    if (!events.empty()) {
      std::printf("=== Telemetry events (last %zu of %llu) ===\n%s\n",
                  std::min<std::size_t>(telemetry.events().size(), 12),
                  static_cast<unsigned long long>(telemetry.events().total_logged()),
                  events.c_str());
    }
    if (!metrics_out.empty()) {
      const bool ok = telemetry.write_metrics_prom(metrics_out);
      std::fprintf(stderr, "%s %s\n",
                   ok ? "wrote" : "FAILED to write", metrics_out.c_str());
    }
    if (!trace_out.empty()) {
      const bool ok = telemetry.write_trace_json(trace_out);
      std::fprintf(stderr, "%s %s (%zu spans, %llu dropped)\n",
                   ok ? "wrote" : "FAILED to write", trace_out.c_str(),
                   telemetry.tracer().span_count(),
                   static_cast<unsigned long long>(telemetry.tracer().dropped()));
    }
    if (core::SelfMonitor* self = mantra.self_monitor()) {
      self->close();
      std::fprintf(stderr, "wrote %s (%zu samples, %zu self-alerts fired)\n",
                   mtel_out.c_str(), self->samples().size(),
                   self->alerts().history().size());
    }
  }

  if (!report_out.empty()) {
    std::printf("\n=== Alerts ===\n\n%s\n",
                mantra.alerts().history_table().render().c_str());
    const bool ok =
        core::write_html_report(report_out, core::report_data_from(mantra));
    std::fprintf(stderr, "%s %s (%zu alerts fired, %zu firing now)\n",
                 ok ? "wrote" : "FAILED to write", report_out.c_str(),
                 mantra.alerts().history().size(),
                 mantra.alerts().firing_count());
  }

  if (!explain_out.empty()) {
    // report_data_from attaches the provenance event tails from the
    // SelfMonitor's samples (when --mtel-out ran) — the same recorded
    // stream `archive_replay --mtel=` feeds offline.
    const core::ReportData data = core::report_data_from(mantra);
    const std::string text =
        core::render_explanations(data.provenance, core::ExplainFilter{});
    std::ofstream out(explain_out, std::ios::binary | std::ios::trunc);
    if (out) out << text;
    std::fprintf(stderr, "%s %s (%zu explanation(s))\n",
                 out ? "wrote" : "FAILED to write", explain_out.c_str(),
                 data.provenance.size());
  }
  return 0;
}
