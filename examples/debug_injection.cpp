// Debugging workflow for the Fig 9 incident: a misconfigured border router
// redistributes its unicast table into DVMRP. Shows how Mantra's route
// monitoring surfaces the problem — the route-count series jumps, the
// spike detector raises an alarm, and the per-prefix diff localises the
// culprit address range — mirroring the paper's off-line analysis that
// identified "unicast route injection into the DVMRP route tables".
//
//   $ ./examples/debug_injection
#include <cstdio>
#include <map>

#include "core/mantra.hpp"
#include "workload/scenario.hpp"

using namespace mantra;

int main() {
  workload::ScenarioConfig config;
  config.seed = 1014;  // October 14th, 1998
  config.domains = 8;
  config.hosts_per_domain = 4;
  config.dvmrp_prefixes_per_domain = 30;
  config.report_loss = 0.05;
  config.timer_scale = 4;
  config.full_timers = false;
  config.generator.session_arrivals_per_hour = 5.0;
  config.generator.bursts_per_day = 0.0;

  workload::FixwScenario scenario(config);
  core::MantraConfig monitor_config;
  monitor_config.cycle = sim::Duration::minutes(15);
  core::Mantra mantra(scenario.engine(), monitor_config);
  mantra.add_target(scenario.network().router(scenario.ucsb_node()));

  // 14:00 on the second day: ~1500 unicast /24s leak into mrouted.
  scenario.schedule_route_injection(
      sim::TimePoint::start() + sim::Duration::days(1) + sim::Duration::hours(14),
      1500, sim::Duration::hours(5));

  scenario.start();
  mantra.start();

  core::Snapshot before_incident;
  bool alarmed = false;
  for (int hour = 1; hour <= 48; ++hour) {
    scenario.engine().run_until(sim::TimePoint::start() + sim::Duration::hours(hour));
    const auto& results = mantra.target_view("ucsb-gw").results();
    if (results.empty()) continue;
    const core::CycleResult& last = results.back();
    if (!alarmed && !last.route_spike) {
      before_incident = mantra.target_view("ucsb-gw").latest_snapshot();
    }
    if (last.route_spike && !alarmed) {
      alarmed = true;
      std::printf("!! ALARM at %s: DVMRP route count %zu (robust z-score %.1f)\n\n",
                  last.t.to_string().c_str(), last.dvmrp_valid_routes,
                  last.route_spike_score);

      // Localise: diff the current route table against the last healthy
      // snapshot and bucket the new prefixes by /8 — the leak announces
      // itself as a block of addresses that never belonged in the MBone.
      const core::Snapshot& now = mantra.target_view("ucsb-gw").latest_snapshot();
      const auto delta = core::RouteTable::diff(before_incident.routes, now.routes);
      std::map<int, int> new_by_slash8;
      for (const core::RouteRow& row : delta.upserts) {
        ++new_by_slash8[row.prefix.address().octet(0)];
      }
      std::printf("new routes since last healthy cycle: %zu\n", delta.upserts.size());
      std::printf("breakdown by first octet:\n");
      for (const auto& [octet, count] : new_by_slash8) {
        std::printf("  %3d.0.0.0/8 : %d routes%s\n", octet, count,
                    count > 100 ? "   <-- the leak" : "");
      }
      std::printf("\n");
    }
  }

  // The full series, as the paper's Fig 9 snapshot shows it.
  const auto routes = mantra.series("ucsb-gw", "dvmrp_routes",
      [](const core::CycleResult& r) { return static_cast<double>(r.dvmrp_valid_routes); });
  core::AsciiChart chart(76, 14);
  chart.add_series(routes, '*');
  std::printf("=== DVMRP routes at UCSB over the 48-hour window ===\n\n%s\n",
              chart.render().c_str());

  std::printf("%s\n", alarmed ? "Incident detected and localised."
                              : "No incident detected (unexpected).");
  return alarmed ? 0 : 1;
}
