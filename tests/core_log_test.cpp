#include <gtest/gtest.h>

#include <random>

#include "core/log.hpp"

namespace mantra::core {
namespace {

PairRow pair(std::uint32_t source, std::uint32_t group, double kbps) {
  PairRow row;
  row.source = net::Ipv4Address(source);
  row.group = net::Ipv4Address(0xE0020000u + group);  // 224.2.x.x
  row.current_kbps = kbps;
  return row;
}

RouteRow route(std::uint32_t net_index, int metric) {
  RouteRow row;
  row.prefix = net::Prefix(net::Ipv4Address(0x0A000000u + (net_index << 8)), 24);
  row.next_hop = net::Ipv4Address(0xC0A80002u);
  row.interface = "tunnel0";
  row.metric = metric;
  return row;
}

Snapshot snapshot_at(sim::TimePoint t) {
  Snapshot snapshot;
  snapshot.router_name = "fixw";
  snapshot.captured = t;
  return snapshot;
}

TEST(DataLogger, FirstRecordIsKeyframeAndReconstructs) {
  DataLogger logger;
  Snapshot snapshot = snapshot_at(sim::TimePoint::start());
  snapshot.pairs.upsert(pair(0x0A010102, 5, 10.0));
  snapshot.routes.upsert(route(1, 3));
  logger.record(snapshot);

  const Snapshot rebuilt = logger.reconstruct(0);
  EXPECT_EQ(rebuilt.pairs, snapshot.pairs);
  EXPECT_EQ(rebuilt.routes, snapshot.routes);
  EXPECT_EQ(rebuilt.router_name, "fixw");
  // Derived tables are regenerated.
  EXPECT_EQ(rebuilt.participants.size(), 1u);
  EXPECT_EQ(rebuilt.sessions.size(), 1u);
}

TEST(DataLogger, DeltaChainReconstructsStableFieldsExactly) {
  DataLogger logger;
  const auto cycle = sim::Duration::minutes(15);

  Snapshot s0 = snapshot_at(sim::TimePoint::start());
  s0.pairs.upsert(pair(0x0A010102, 5, 10.0));
  s0.routes.upsert(route(1, 3));
  s0.routes.upsert(route(2, 4));
  logger.record(s0);

  Snapshot s1 = snapshot_at(sim::TimePoint::start() + cycle);
  s1.pairs = s0.pairs;
  s1.pairs.upsert(pair(0x0A010103, 5, 2.0));  // new pair
  s1.routes = s0.routes;
  s1.routes.erase(route(2, 4).key());         // route withdrawn
  logger.record(s1);

  Snapshot s2 = snapshot_at(sim::TimePoint::start() + cycle * std::int64_t{2});
  s2.pairs = s1.pairs;
  PairRow changed = pair(0x0A010102, 5, 99.0);  // rate change
  s2.pairs.upsert(changed);
  s2.routes = s1.routes;
  logger.record(s2);

  const Snapshot rebuilt = logger.reconstruct(2);
  ASSERT_EQ(rebuilt.pairs.size(), 2u);
  EXPECT_DOUBLE_EQ(rebuilt.pairs.find(changed.key())->current_kbps, 99.0);
  EXPECT_EQ(rebuilt.routes.size(), 1u);
  EXPECT_EQ(rebuilt.captured, s2.captured);
}

TEST(DataLogger, ReconstructAdvancesDerivedFieldsByRecurrence) {
  DataLogger logger;
  const auto cycle = sim::Duration::minutes(15);

  Snapshot s0 = snapshot_at(sim::TimePoint::start());
  PairRow row = pair(0x0A010102, 5, 8.0);
  row.uptime = sim::Duration::minutes(30);
  s0.pairs.upsert(row);
  logger.record(s0);

  Snapshot s1 = snapshot_at(sim::TimePoint::start() + cycle);
  row.uptime = sim::Duration::minutes(45);  // what the router would report
  s1.pairs = PairTable{};
  s1.pairs.upsert(row);
  logger.record(s1);

  const Snapshot rebuilt = logger.reconstruct(1);
  // Unchanged row: uptime rolled forward by the cycle gap.
  EXPECT_EQ(rebuilt.pairs.rows()[0].uptime, sim::Duration::minutes(45));
}

TEST(DataLogger, DeltaStorageBeatsNaiveOnSlowlyChangingTables) {
  DataLogger logger;
  Snapshot snapshot = snapshot_at(sim::TimePoint::start());
  for (std::uint32_t i = 0; i < 500; ++i) snapshot.routes.upsert(route(i, 3));
  for (std::uint32_t i = 0; i < 100; ++i) {
    snapshot.pairs.upsert(pair(0x0A010100u + i, i % 7, 5.0));
  }

  std::mt19937 rng(5);
  for (int cycle = 0; cycle < 50; ++cycle) {
    snapshot.captured = sim::TimePoint::start() + sim::Duration::minutes(15 * cycle);
    // A couple of route flaps per cycle, everything else stable.
    snapshot.routes.upsert(route(rng() % 500, 3 + static_cast<int>(rng() % 3)));
    logger.record(snapshot);
  }
  // The paper's claim: storing deltas is "a very effective way of
  // conserving storage space" for slowly changing tables.
  EXPECT_LT(logger.stored_bytes(), logger.naive_bytes() / 10);
}

TEST(DataLogger, AblationFullSnapshotsMatchNaiveCost) {
  LoggerConfig config;
  config.store_deltas = false;
  DataLogger logger(config);
  Snapshot snapshot = snapshot_at(sim::TimePoint::start());
  for (std::uint32_t i = 0; i < 100; ++i) snapshot.routes.upsert(route(i, 3));
  for (int cycle = 0; cycle < 10; ++cycle) {
    snapshot.captured = sim::TimePoint::start() + sim::Duration::minutes(15 * cycle);
    logger.record(snapshot);
  }
  EXPECT_EQ(logger.stored_bytes(), logger.naive_bytes());
}

TEST(DataLogger, CountingLedgersMatchSerializedByteLengths) {
  // The logger counts codec bytes without materializing them; the counting
  // sink must agree exactly with the string sink on real row data,
  // including awkward numeric widths (one-digit and three-digit octets,
  // %g-formatted rates, multi-digit millisecond fields).
  Snapshot snapshot = snapshot_at(sim::TimePoint::start() + sim::Duration::hours(7));
  for (std::uint32_t i = 0; i < 120; ++i) {
    PairRow row = pair(0x0A010100u + i, i % 9, 0.001 + 1234.5678 * i);
    row.packets = 1 + 99991ull * i;
    row.uptime = sim::Duration::seconds(17 * i);
    snapshot.pairs.upsert(row);
  }
  for (std::uint32_t i = 0; i < 120; ++i) snapshot.routes.upsert(route(i, 1 + i % 250));
  SaRow sa;
  sa.source = net::Ipv4Address(10, 200, 3, 254);
  sa.group = net::Ipv4Address(224, 2, 0, 5);
  sa.origin_rp = net::Ipv4Address(10, 0, 1, 1);
  sa.age = sim::Duration::minutes(90);
  snapshot.sa_cache.upsert(sa);
  MbgpRow mbgp;
  mbgp.prefix = *net::Prefix::parse("10.4.0.0/16");
  mbgp.next_hop = net::Ipv4Address(192, 168, 0, 2);
  snapshot.mbgp_routes.upsert(mbgp);
  snapshot.participants = derive_participants(snapshot.pairs);
  snapshot.sessions = derive_sessions(snapshot.pairs);

  // Key-frame-only logger: stored == naive == the real serialized size.
  LoggerConfig full;
  full.store_deltas = false;
  DataLogger keyframes(full);
  keyframes.record(snapshot);
  EXPECT_EQ(keyframes.naive_bytes(), serialize_snapshot(snapshot, false).size());
  EXPECT_EQ(keyframes.stored_bytes(), keyframes.naive_bytes());

  // Ablated logger stores derived tables too.
  LoggerConfig fat = full;
  fat.derive_redundant = false;
  DataLogger derived(fat);
  derived.record(snapshot);
  EXPECT_EQ(derived.stored_bytes(), serialize_snapshot(snapshot, true).size());
}

TEST(DataLogger, RedundancyAblationStoresDerivedTables) {
  Snapshot snapshot = snapshot_at(sim::TimePoint::start());
  for (std::uint32_t i = 0; i < 50; ++i) {
    snapshot.pairs.upsert(pair(0x0A010100u + i, i % 5, 5.0));
  }
  snapshot.participants = derive_participants(snapshot.pairs);
  snapshot.sessions = derive_sessions(snapshot.pairs);

  LoggerConfig lean;  // derive_redundant = true
  LoggerConfig fat;
  fat.derive_redundant = false;
  DataLogger lean_logger(lean), fat_logger(fat);
  lean_logger.record(snapshot);
  fat_logger.record(snapshot);
  EXPECT_LT(lean_logger.stored_bytes(), fat_logger.stored_bytes());
}

TEST(DataLogger, KeyframeIntervalBoundsReplayChain) {
  LoggerConfig config;
  config.full_snapshot_every = 4;
  DataLogger logger(config);
  Snapshot snapshot = snapshot_at(sim::TimePoint::start());
  for (int cycle = 0; cycle < 10; ++cycle) {
    snapshot.captured = sim::TimePoint::start() + sim::Duration::minutes(15 * cycle);
    snapshot.pairs.upsert(pair(0x0A010102, static_cast<std::uint32_t>(cycle), 1.0));
    logger.record(snapshot);
  }
  // Every index reconstructs correctly regardless of keyframe position.
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(logger.reconstruct(i).pairs.size(), i + 1) << "cycle " << i;
  }
}

TEST(DataLogger, ReconstructExactOnAndAdjacentToKeyframeBoundaries) {
  // The off-by-one minefield: the cycle a key-frame lands on, the one just
  // before (longest delta chain), and the one just after (chain length 1)
  // must all reconstruct the exact stable state.
  LoggerConfig config;
  config.full_snapshot_every = 4;  // key-frames at cycles 0, 4, 8
  DataLogger logger(config);
  std::vector<PairTable> truth;
  PairTable current;
  for (int cycle = 0; cycle < 10; ++cycle) {
    current.upsert(pair(0x0A010100u + static_cast<std::uint32_t>(cycle), 1,
                        static_cast<double>(10 * cycle + 1)));
    if (cycle >= 2) {
      current.erase({net::Ipv4Address(0x0A010100u + static_cast<std::uint32_t>(cycle - 2)),
                     net::Ipv4Address(0xE0020001u)});
    }
    Snapshot snapshot = snapshot_at(sim::TimePoint::start() +
                                    sim::Duration::minutes(15 * cycle));
    snapshot.pairs = current;
    logger.record(snapshot);
    truth.push_back(current);
  }
  for (const std::size_t boundary : {std::size_t{4}, std::size_t{8}}) {
    for (const std::size_t i : {boundary - 1, boundary, boundary + 1}) {
      const Snapshot rebuilt = logger.reconstruct(i);
      ASSERT_EQ(rebuilt.pairs.size(), truth[i].size()) << "cycle " << i;
      truth[i].visit([&](const PairRow& row) {
        const PairRow* got = rebuilt.pairs.find(row.key());
        ASSERT_NE(got, nullptr) << "cycle " << i;
        EXPECT_DOUBLE_EQ(got->current_kbps, row.current_kbps) << "cycle " << i;
      });
    }
  }
}

TEST(DataLogger, RandomisedReconstructionMatchesDirectState) {
  // Property test: arbitrary mutate/record sequences reconstruct the exact
  // stable state at every cycle.
  std::mt19937 rng(77);
  LoggerConfig config;
  config.full_snapshot_every = 8;
  DataLogger logger(config);
  std::vector<PairTable> truth;
  PairTable current;
  for (int cycle = 0; cycle < 40; ++cycle) {
    for (int mutation = 0; mutation < 5; ++mutation) {
      const std::uint32_t host = 0x0A010100u + rng() % 30;
      if (rng() % 3 == 0) {
        current.erase({net::Ipv4Address(host), net::Ipv4Address(0xE0020001u)});
      } else {
        current.upsert(pair(host, 1, static_cast<double>(rng() % 100)));
      }
    }
    Snapshot snapshot = snapshot_at(sim::TimePoint::start() +
                                    sim::Duration::minutes(15 * cycle));
    snapshot.pairs = current;
    logger.record(snapshot);
    truth.push_back(current);
  }
  for (std::size_t i = 0; i < truth.size(); ++i) {
    const Snapshot rebuilt = logger.reconstruct(i);
    ASSERT_EQ(rebuilt.pairs.size(), truth[i].size()) << "cycle " << i;
    truth[i].visit([&](const PairRow& row) {
      const PairRow* got = rebuilt.pairs.find(row.key());
      ASSERT_NE(got, nullptr);
      EXPECT_DOUBLE_EQ(got->current_kbps, row.current_kbps);
    });
  }
}

TEST(SerializeSnapshot, ContainsAllTables) {
  Snapshot snapshot = snapshot_at(sim::TimePoint::start());
  snapshot.pairs.upsert(pair(0x0A010102, 5, 10.0));
  snapshot.routes.upsert(route(1, 3));
  SaRow sa;
  sa.source = net::Ipv4Address(10, 1, 1, 2);
  sa.group = net::Ipv4Address(224, 2, 0, 5);
  sa.origin_rp = net::Ipv4Address(10, 0, 1, 1);
  snapshot.sa_cache.upsert(sa);
  MbgpRow mbgp;
  mbgp.prefix = *net::Prefix::parse("10.4.0.0/16");
  mbgp.next_hop = net::Ipv4Address(192, 168, 0, 2);
  mbgp.as_path = "3000 104";
  snapshot.mbgp_routes.upsert(mbgp);

  const std::string text = serialize_snapshot(snapshot, false);
  EXPECT_NE(text.find("# snapshot router=fixw"), std::string::npos);
  EXPECT_NE(text.find("\nP 10.1.1.2 224.2.0.5 "), std::string::npos);
  EXPECT_NE(text.find("\nR 10.0.1.0/24 "), std::string::npos);
  EXPECT_NE(text.find("\nA 10.1.1.2 224.2.0.5 10.0.1.1 "), std::string::npos);
  EXPECT_NE(text.find("\nB 10.4.0.0/16 192.168.0.2 3000 104"), std::string::npos);
}

}  // namespace
}  // namespace mantra::core
