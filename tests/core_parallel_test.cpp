// core/parallel pool semantics, per-target seed independence, and the
// tentpole guarantee: the parallel per-target collection pipeline produces
// results, archives and CSV output byte-identical to the sequential path,
// including under per-target fault injection.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <memory>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/mantra.hpp"
#include "core/parallel.hpp"
#include "workload/scenario.hpp"

namespace mantra::core {
namespace {

// --- ThreadPool / run_all ----------------------------------------------------

TEST(ThreadPool, RunAllExecutesEveryTaskAndJoins) {
  parallel::ThreadPool pool(4);
  std::atomic<int> count{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 64; ++i) {
    tasks.emplace_back([&count] { count.fetch_add(1); });
  }
  parallel::run_all(&pool, std::move(tasks));
  // run_all is a barrier: every task has finished by the time it returns.
  EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPool, NullPoolRunsInlineInOrder) {
  std::vector<int> order;
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 8; ++i) {
    tasks.emplace_back([&order, i] { order.push_back(i); });
  }
  parallel::run_all(nullptr, std::move(tasks));
  ASSERT_EQ(order.size(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(ThreadPool, RunAllRethrowsFirstTaskError) {
  parallel::ThreadPool pool(2);
  std::atomic<int> completed{0};
  std::vector<std::function<void()>> tasks;
  tasks.emplace_back([&completed] { completed.fetch_add(1); });
  tasks.emplace_back([] { throw std::runtime_error("shard failed"); });
  tasks.emplace_back([&completed] { completed.fetch_add(1); });
  EXPECT_THROW(parallel::run_all(&pool, std::move(tasks)), std::runtime_error);
  // The healthy tasks still ran to completion before the rethrow.
  EXPECT_EQ(completed.load(), 2);
}

TEST(ThreadPool, SingleTaskRunsInlineEvenWithPool) {
  parallel::ThreadPool pool(2);
  bool ran = false;
  std::vector<std::function<void()>> tasks;
  tasks.emplace_back([&ran] { ran = true; });
  parallel::run_all(&pool, std::move(tasks));
  EXPECT_TRUE(ran);
}

// --- per-target seed streams -------------------------------------------------

TEST(PerTargetSeed, DistinctTargetsGetDistinctStreams) {
  const std::uint64_t base = RetryPolicy{}.jitter_seed;
  std::set<std::uint64_t> seeds;
  for (const char* name : {"fixw", "ucsb-gw", "bdr2", "bdr3", "a", "b"}) {
    seeds.insert(per_target_seed(base, name));
  }
  EXPECT_EQ(seeds.size(), 6u);
  // Deterministic: the stream is a pure function of (base, name).
  EXPECT_EQ(per_target_seed(base, "fixw"), per_target_seed(base, "fixw"));
  EXPECT_NE(per_target_seed(base, "fixw"), per_target_seed(base + 1, "fixw"));
}

// --- Sequential vs parallel equivalence --------------------------------------

std::string read_file_bytes(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Mixed-health fault injection, per target: the hub collects cleanly, one
/// border is degraded (truncation/garbling/slowness), one is fully dark.
/// Each target gets its own transport instance with a name-derived seed, so
/// a monitor's fault schedule is identical however its targets are
/// scheduled.
TransportFactory mixed_fault_factory() {
  return [](const std::string& name) -> std::unique_ptr<Transport> {
    FaultProfile profile;  // default: no faults (the hub)
    if (name == "ucsb-gw") {
      profile = FaultProfile::command_failure_rate(0.3);
    } else if (name == "bdr2") {
      profile.connect_refused_p = 1.0;  // permanently dark
    }
    return std::make_unique<FaultInjectingTransport>(
        per_target_seed(0xfa0175eed, name), profile);
  };
}

class ParallelEquivalence : public ::testing::Test {
 protected:
  ParallelEquivalence() : scenario_(make_config()) { scenario_.start(); }

  static workload::ScenarioConfig make_config() {
    workload::ScenarioConfig config;
    config.seed = 33;
    config.domains = 4;
    config.hosts_per_domain = 6;
    config.dvmrp_prefixes_per_domain = 6;
    config.report_loss = 0.05;
    config.timer_scale = 1;
    config.full_timers = true;
    config.generator.session_arrivals_per_hour = 40.0;
    config.generator.bursts_per_day = 0.0;
    return config;
  }

  std::unique_ptr<Mantra> make_monitor(std::size_t worker_threads,
                                       const std::string& archive_dir) {
    MantraConfig config;
    config.cycle = sim::Duration::minutes(15);
    config.retry.max_attempts = 2;
    config.unreachable_after = 2;
    config.worker_threads = worker_threads;
    config.archive_dir = archive_dir;
    auto monitor = std::make_unique<Mantra>(scenario_.engine(), config,
                                            mixed_fault_factory());
    monitor->add_target(scenario_.network().router(scenario_.fixw_node()));
    for (const net::NodeId border : scenario_.border_nodes()) {
      monitor->add_target(scenario_.network().router(border));
    }
    monitor->start();
    return monitor;
  }

  workload::FixwScenario scenario_;
};

TEST_F(ParallelEquivalence, ParallelPathIsByteIdenticalToSequential) {
  const std::filesystem::path base =
      std::filesystem::path(::testing::TempDir()) / "mantra_par_equiv";
  std::filesystem::remove_all(base);
  const std::string seq_dir = (base / "seq").string();
  const std::string par_dir = (base / "par").string();

  auto sequential = make_monitor(0, seq_dir);
  auto parallel_m = make_monitor(4, par_dir);
  scenario_.engine().run_until(scenario_.engine().now() + sim::Duration::hours(4));

  const std::vector<std::string> names = sequential->target_names();
  ASSERT_EQ(names, parallel_m->target_names());
  ASSERT_EQ(names.size(), 5u);

  bool any_stale = false;
  bool any_results = false;
  for (const std::string& name : names) {
    const auto& seq_results = sequential->target_view(name).results();
    const auto& par_results = parallel_m->target_view(name).results();
    // CycleResult-for-CycleResult identity, including the fault accounting.
    EXPECT_EQ(seq_results, par_results) << "target " << name;
    EXPECT_EQ(sequential->target_view(name).health(),
              parallel_m->target_view(name).health());
    for (const CycleResult& result : seq_results) any_stale |= result.stale;
    any_results |= !seq_results.empty();

    // Fig 3 / Fig 7 CSV output must match byte for byte.
    const auto sessions = [](const CycleResult& r) {
      return static_cast<double>(r.usage.sessions);
    };
    const auto routes = [](const CycleResult& r) {
      return static_cast<double>(r.dvmrp_valid_routes);
    };
    EXPECT_EQ(sequential->series(name, "sessions", sessions).to_csv(),
              parallel_m->series(name, "sessions", sessions).to_csv());
    EXPECT_EQ(sequential->series(name, "dvmrp_valid", routes).to_csv(),
              parallel_m->series(name, "dvmrp_valid", routes).to_csv());
  }
  // The run actually exercised the faulty paths: results were produced and
  // at least one cycle carried a stale table.
  EXPECT_TRUE(any_results);
  EXPECT_TRUE(any_stale);
  // The dark target recorded nothing and is unreachable on both paths.
  EXPECT_TRUE(sequential->target_view("bdr2").results().empty());
  EXPECT_EQ(sequential->target_view("bdr2").health(), TargetHealth::Unreachable);

  // Archives: destroy the monitors to flush, then compare bytes per target.
  sequential.reset();
  parallel_m.reset();
  for (const std::string& name : names) {
    const std::string seq_bytes =
        read_file_bytes(std::filesystem::path(seq_dir) / (name + ".marc"));
    const std::string par_bytes =
        read_file_bytes(std::filesystem::path(par_dir) / (name + ".marc"));
    EXPECT_FALSE(seq_bytes.empty()) << "target " << name;
    EXPECT_EQ(seq_bytes, par_bytes) << "target " << name;
  }
  std::filesystem::remove_all(base);
}

TEST_F(ParallelEquivalence, TargetFaultsDoNotPerturbOtherTargets) {
  // A target-local failure regime must leave every *other* target's results
  // untouched: run once with the mixed-fault factory and once with the dark
  // target's profile swapped to clean, and compare the unaffected targets.
  auto isolated_factory = [](const std::string& name) -> std::unique_ptr<Transport> {
    FaultProfile profile;
    if (name == "ucsb-gw") profile = FaultProfile::command_failure_rate(0.3);
    // "bdr2" is clean here, dark in mixed_fault_factory().
    return std::make_unique<FaultInjectingTransport>(
        per_target_seed(0xfa0175eed, name), profile);
  };

  MantraConfig config;
  config.cycle = sim::Duration::minutes(15);
  config.retry.max_attempts = 2;
  auto with_dark = std::make_unique<Mantra>(scenario_.engine(), config,
                                            mixed_fault_factory());
  auto without_dark =
      std::make_unique<Mantra>(scenario_.engine(), config, isolated_factory);
  for (Mantra* monitor : {with_dark.get(), without_dark.get()}) {
    monitor->add_target(scenario_.network().router(scenario_.fixw_node()));
    for (const net::NodeId border : scenario_.border_nodes()) {
      monitor->add_target(scenario_.network().router(border));
    }
    monitor->start();
  }
  scenario_.engine().run_until(scenario_.engine().now() + sim::Duration::hours(2));

  // bdr2 differs by construction...
  EXPECT_TRUE(with_dark->target_view("bdr2").results().empty());
  EXPECT_FALSE(without_dark->target_view("bdr2").results().empty());
  // ...but every other target's cycle results are identical: per-target
  // transports and jitter streams mean no cross-target coupling.
  for (const std::string& name : with_dark->target_names()) {
    if (name == "bdr2") continue;
    EXPECT_EQ(with_dark->target_view(name).results(),
              without_dark->target_view(name).results())
        << "target " << name;
  }
}

}  // namespace
}  // namespace mantra::core
