#include <gtest/gtest.h>

#include <map>
#include <random>

#include "net/ipv4.hpp"
#include "net/prefix.hpp"
#include "net/prefix_trie.hpp"
#include "net/topology.hpp"

namespace mantra::net {
namespace {

// --- Ipv4Address -----------------------------------------------------------

TEST(Ipv4Address, DefaultIsUnspecified) {
  Ipv4Address addr;
  EXPECT_TRUE(addr.is_unspecified());
  EXPECT_EQ(addr.value(), 0u);
}

TEST(Ipv4Address, OctetConstructorMatchesValue) {
  Ipv4Address addr(10, 20, 30, 40);
  EXPECT_EQ(addr.value(), 0x0A141E28u);
  EXPECT_EQ(addr.octet(0), 10);
  EXPECT_EQ(addr.octet(1), 20);
  EXPECT_EQ(addr.octet(2), 30);
  EXPECT_EQ(addr.octet(3), 40);
}

TEST(Ipv4Address, ToStringRendersDottedQuad) {
  EXPECT_EQ(Ipv4Address(224, 2, 127, 254).to_string(), "224.2.127.254");
  EXPECT_EQ(Ipv4Address().to_string(), "0.0.0.0");
  EXPECT_EQ(Ipv4Address(255, 255, 255, 255).to_string(), "255.255.255.255");
}

TEST(Ipv4Address, ParseAcceptsValidAddresses) {
  EXPECT_EQ(Ipv4Address::parse("10.1.2.3"), Ipv4Address(10, 1, 2, 3));
  EXPECT_EQ(Ipv4Address::parse("0.0.0.0"), Ipv4Address());
  EXPECT_EQ(Ipv4Address::parse("255.255.255.255"), Ipv4Address(255, 255, 255, 255));
}

TEST(Ipv4Address, ParseRejectsMalformedInput) {
  EXPECT_FALSE(Ipv4Address::parse(""));
  EXPECT_FALSE(Ipv4Address::parse("10.1.2"));
  EXPECT_FALSE(Ipv4Address::parse("10.1.2.3.4"));
  EXPECT_FALSE(Ipv4Address::parse("10.1.2.256"));
  EXPECT_FALSE(Ipv4Address::parse("10.1.2.x"));
  EXPECT_FALSE(Ipv4Address::parse("10.1.2.3 "));
  EXPECT_FALSE(Ipv4Address::parse(" 10.1.2.3"));
  EXPECT_FALSE(Ipv4Address::parse("10..2.3"));
}

TEST(Ipv4Address, ParseRoundTripsToString) {
  std::mt19937 rng(1234);
  for (int i = 0; i < 200; ++i) {
    const Ipv4Address addr(static_cast<std::uint32_t>(rng()));
    const auto parsed = Ipv4Address::parse(addr.to_string());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, addr);
  }
}

TEST(Ipv4Address, MulticastClassification) {
  EXPECT_TRUE(Ipv4Address(224, 0, 0, 1).is_multicast());
  EXPECT_TRUE(Ipv4Address(239, 255, 255, 255).is_multicast());
  EXPECT_FALSE(Ipv4Address(223, 255, 255, 255).is_multicast());
  EXPECT_FALSE(Ipv4Address(240, 0, 0, 0).is_multicast());
  EXPECT_TRUE(Ipv4Address(224, 0, 0, 13).is_link_local_multicast());
  EXPECT_FALSE(Ipv4Address(224, 0, 1, 13).is_link_local_multicast());
  EXPECT_TRUE(Ipv4Address(239, 1, 2, 3).is_admin_scoped());
  EXPECT_FALSE(Ipv4Address(238, 1, 2, 3).is_admin_scoped());
}

TEST(Ipv4Address, OrderingIsNumeric) {
  EXPECT_LT(Ipv4Address(10, 0, 0, 1), Ipv4Address(10, 0, 0, 2));
  EXPECT_LT(Ipv4Address(9, 255, 255, 255), Ipv4Address(10, 0, 0, 0));
}

// --- Prefix ------------------------------------------------------------------

TEST(Prefix, CanonicalisesHostBits) {
  Prefix p(Ipv4Address(10, 1, 2, 3), 24);
  EXPECT_EQ(p.address(), Ipv4Address(10, 1, 2, 0));
  EXPECT_EQ(p.length(), 24);
  EXPECT_EQ(p, Prefix(Ipv4Address(10, 1, 2, 99), 24));
}

TEST(Prefix, MaskForLength) {
  EXPECT_EQ(mask_for_length(0), 0u);
  EXPECT_EQ(mask_for_length(8), 0xFF000000u);
  EXPECT_EQ(mask_for_length(24), 0xFFFFFF00u);
  EXPECT_EQ(mask_for_length(32), 0xFFFFFFFFu);
}

TEST(Prefix, ContainsAddress) {
  const Prefix p(Ipv4Address(192, 168, 4, 0), 22);
  EXPECT_TRUE(p.contains(Ipv4Address(192, 168, 4, 1)));
  EXPECT_TRUE(p.contains(Ipv4Address(192, 168, 7, 255)));
  EXPECT_FALSE(p.contains(Ipv4Address(192, 168, 8, 0)));
  EXPECT_FALSE(p.contains(Ipv4Address(192, 168, 3, 255)));
}

TEST(Prefix, ContainsPrefix) {
  const Prefix p(Ipv4Address(10, 0, 0, 0), 8);
  EXPECT_TRUE(p.contains(Prefix(Ipv4Address(10, 1, 0, 0), 16)));
  EXPECT_TRUE(p.contains(p));
  EXPECT_FALSE(p.contains(Prefix(Ipv4Address(11, 0, 0, 0), 16)));
  EXPECT_FALSE(Prefix(Ipv4Address(10, 1, 0, 0), 16).contains(p));
}

TEST(Prefix, ParseAndRender) {
  const auto p = Prefix::parse("10.1.0.0/16");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->to_string(), "10.1.0.0/16");
  EXPECT_EQ(p->netmask_string(), "255.255.0.0");

  const auto host = Prefix::parse("10.1.2.3");
  ASSERT_TRUE(host.has_value());
  EXPECT_EQ(host->length(), 32);

  EXPECT_FALSE(Prefix::parse("10.1.0.0/33"));
  EXPECT_FALSE(Prefix::parse("10.1.0.0/-1"));
  EXPECT_FALSE(Prefix::parse("10.1.0.0/"));
  EXPECT_FALSE(Prefix::parse("bogus/8"));
}

TEST(Prefix, SizeAndHost) {
  const Prefix p(Ipv4Address(10, 0, 0, 0), 24);
  EXPECT_EQ(p.size(), 256u);
  EXPECT_EQ(p.host(1), Ipv4Address(10, 0, 0, 1));
  EXPECT_EQ(p.host(255), Ipv4Address(10, 0, 0, 255));
}

TEST(Prefix, MulticastRangeConstant) {
  EXPECT_TRUE(kMulticastRange.contains(Ipv4Address(224, 0, 0, 1)));
  EXPECT_TRUE(kMulticastRange.contains(Ipv4Address(239, 255, 0, 1)));
  EXPECT_FALSE(kMulticastRange.contains(Ipv4Address(192, 168, 0, 1)));
}

// --- PrefixTrie ----------------------------------------------------------------

TEST(PrefixTrie, InsertFindErase) {
  PrefixTrie<int> trie;
  EXPECT_TRUE(trie.insert(*Prefix::parse("10.0.0.0/8"), 1));
  EXPECT_FALSE(trie.insert(*Prefix::parse("10.0.0.0/8"), 2));  // replace
  EXPECT_EQ(trie.size(), 1u);
  ASSERT_NE(trie.find(*Prefix::parse("10.0.0.0/8")), nullptr);
  EXPECT_EQ(*trie.find(*Prefix::parse("10.0.0.0/8")), 2);
  EXPECT_EQ(trie.find(*Prefix::parse("10.0.0.0/9")), nullptr);
  EXPECT_TRUE(trie.erase(*Prefix::parse("10.0.0.0/8")));
  EXPECT_FALSE(trie.erase(*Prefix::parse("10.0.0.0/8")));
  EXPECT_TRUE(trie.empty());
}

TEST(PrefixTrie, LongestMatchPrefersMoreSpecific) {
  PrefixTrie<int> trie;
  trie.insert(*Prefix::parse("10.0.0.0/8"), 8);
  trie.insert(*Prefix::parse("10.1.0.0/16"), 16);
  trie.insert(*Prefix::parse("10.1.2.0/24"), 24);

  const auto m1 = trie.longest_match(Ipv4Address(10, 1, 2, 3));
  ASSERT_TRUE(m1.has_value());
  EXPECT_EQ(*m1->second, 24);

  const auto m2 = trie.longest_match(Ipv4Address(10, 1, 9, 9));
  ASSERT_TRUE(m2.has_value());
  EXPECT_EQ(*m2->second, 16);

  const auto m3 = trie.longest_match(Ipv4Address(10, 200, 0, 1));
  ASSERT_TRUE(m3.has_value());
  EXPECT_EQ(*m3->second, 8);

  EXPECT_FALSE(trie.longest_match(Ipv4Address(11, 0, 0, 1)).has_value());
}

TEST(PrefixTrie, DefaultRouteMatchesEverything) {
  PrefixTrie<int> trie;
  trie.insert(Prefix(Ipv4Address(), 0), 0);
  EXPECT_TRUE(trie.longest_match(Ipv4Address(1, 2, 3, 4)).has_value());
  EXPECT_TRUE(trie.longest_match(Ipv4Address(255, 255, 255, 255)).has_value());
}

TEST(PrefixTrie, VisitInAddressOrder) {
  PrefixTrie<int> trie;
  trie.insert(*Prefix::parse("192.168.0.0/16"), 1);
  trie.insert(*Prefix::parse("10.0.0.0/8"), 2);
  trie.insert(*Prefix::parse("10.1.0.0/16"), 3);
  const auto entries = trie.entries();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].first.to_string(), "10.0.0.0/8");
  EXPECT_EQ(entries[1].first.to_string(), "10.1.0.0/16");
  EXPECT_EQ(entries[2].first.to_string(), "192.168.0.0/16");
}

// Property test: the trie agrees with a naive linear longest-prefix match
// over randomly generated tables and probes.
TEST(PrefixTrie, MatchesNaiveImplementationOnRandomTables) {
  std::mt19937 rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    PrefixTrie<std::uint32_t> trie;
    std::map<Prefix, std::uint32_t> naive;
    for (int i = 0; i < 120; ++i) {
      const int length = static_cast<int>(rng() % 25) + 8;
      const Prefix prefix(Ipv4Address(static_cast<std::uint32_t>(rng())), length);
      const auto value = static_cast<std::uint32_t>(rng());
      trie.insert(prefix, value);
      naive[prefix] = value;
    }
    ASSERT_EQ(trie.size(), naive.size());
    for (int probe = 0; probe < 200; ++probe) {
      const Ipv4Address addr(static_cast<std::uint32_t>(rng()));
      const Prefix* best = nullptr;
      for (const auto& [prefix, value] : naive) {
        if (prefix.contains(addr) && (best == nullptr || prefix.length() > best->length())) {
          best = &prefix;
        }
      }
      const auto got = trie.longest_match(addr);
      if (best == nullptr) {
        EXPECT_FALSE(got.has_value());
      } else {
        ASSERT_TRUE(got.has_value());
        EXPECT_EQ(got->first, *best);
        EXPECT_EQ(*got->second, naive.at(*best));
      }
    }
  }
}

// --- Topology -------------------------------------------------------------------

TEST(Topology, ConnectAllocatesEndpointAddresses) {
  Topology topo;
  const NodeId a = topo.add_router("a");
  const NodeId b = topo.add_router("b");
  const LinkId link = topo.connect(a, b, *Prefix::parse("192.168.0.0/30"));
  EXPECT_EQ(topo.node(a).interfaces[0].address, Ipv4Address(192, 168, 0, 1));
  EXPECT_EQ(topo.node(b).interfaces[0].address, Ipv4Address(192, 168, 0, 2));
  EXPECT_EQ(topo.link(link).attachments.size(), 2u);
}

TEST(Topology, ConnectRejectsTooSmallSubnet) {
  Topology topo;
  const NodeId a = topo.add_router("a");
  const NodeId b = topo.add_router("b");
  EXPECT_THROW(topo.connect(a, b, *Prefix::parse("10.0.0.0/31")),
               std::invalid_argument);
}

TEST(Topology, LanAttachmentsGetSequentialAddresses) {
  Topology topo;
  const LinkId lan = topo.create_lan(*Prefix::parse("10.0.1.0/24"));
  const NodeId r = topo.add_router("r");
  const NodeId h1 = topo.add_host("h1");
  const NodeId h2 = topo.add_host("h2");
  topo.attach_to_lan(r, lan);
  topo.attach_to_lan(h1, lan);
  topo.attach_to_lan(h2, lan);
  EXPECT_EQ(topo.node(r).interfaces[0].address, Ipv4Address(10, 0, 1, 1));
  EXPECT_EQ(topo.node(h1).interfaces[0].address, Ipv4Address(10, 0, 1, 2));
  EXPECT_EQ(topo.node(h2).interfaces[0].address, Ipv4Address(10, 0, 1, 3));
}

TEST(Topology, AttachToLanRequiresLan) {
  Topology topo;
  const NodeId a = topo.add_router("a");
  const NodeId b = topo.add_router("b");
  const LinkId p2p = topo.connect(a, b, *Prefix::parse("10.9.0.0/30"));
  EXPECT_THROW(topo.attach_to_lan(a, p2p), std::invalid_argument);
}

TEST(Topology, NeighborsExcludeSelfAndDisabled) {
  Topology topo;
  const LinkId lan = topo.create_lan(*Prefix::parse("10.0.1.0/24"));
  const NodeId r1 = topo.add_router("r1");
  const NodeId r2 = topo.add_router("r2");
  const NodeId r3 = topo.add_router("r3");
  topo.attach_to_lan(r1, lan);
  const IfIndex r2_if = topo.attach_to_lan(r2, lan);
  topo.attach_to_lan(r3, lan);

  EXPECT_EQ(topo.neighbors(r1, 0).size(), 2u);
  topo.set_interface_enabled(r2, r2_if, false);
  EXPECT_EQ(topo.neighbors(r1, 0).size(), 1u);
  // A disabled interface also has no neighbors itself.
  EXPECT_TRUE(topo.neighbors(r2, r2_if).empty());
}

TEST(Topology, FindByAddress) {
  Topology topo;
  const NodeId a = topo.add_router("a");
  const NodeId b = topo.add_router("b");
  topo.connect(a, b, *Prefix::parse("192.168.0.0/30"));
  const auto found = topo.find_by_address(Ipv4Address(192, 168, 0, 2));
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->node, b);
  EXPECT_FALSE(topo.find_by_address(Ipv4Address(1, 1, 1, 1)).has_value());
}

TEST(Topology, PrimaryAddressIsLowest) {
  Topology topo;
  const NodeId a = topo.add_router("a");
  const NodeId b = topo.add_router("b");
  const NodeId c = topo.add_router("c");
  topo.connect(a, b, *Prefix::parse("192.168.0.0/30"));
  topo.connect(a, c, *Prefix::parse("10.0.0.0/30"));
  EXPECT_EQ(topo.node(a).primary_address(), Ipv4Address(10, 0, 0, 1));
}

}  // namespace
}  // namespace mantra::net
