#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "core/archive.hpp"
#include "core/mantra.hpp"
#include "workload/scenario.hpp"

namespace mantra::core {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

PairRow pair(std::uint32_t source, std::uint32_t group, double kbps) {
  PairRow row;
  row.source = net::Ipv4Address(source);
  row.group = net::Ipv4Address(0xE0020000u + group);  // 224.2.x.x
  row.current_kbps = kbps;
  return row;
}

RouteRow route(std::uint32_t net_index, int metric) {
  RouteRow row;
  row.prefix = net::Prefix(net::Ipv4Address(0x0A000000u + (net_index << 8)), 24);
  row.next_hop = net::Ipv4Address(0xC0A80002u);
  row.interface = "tunnel0";
  row.metric = metric;
  return row;
}

SaRow sa(std::uint32_t source, std::uint32_t group) {
  SaRow row;
  row.source = net::Ipv4Address(source);
  row.group = net::Ipv4Address(0xE0020000u + group);
  row.origin_rp = net::Ipv4Address(10, 0, 1, 1);
  row.via_peer = net::Ipv4Address(10, 0, 2, 1);
  return row;
}

MbgpRow mbgp(std::uint32_t net_index) {
  MbgpRow row;
  row.prefix = net::Prefix(net::Ipv4Address(0x0A400000u + (net_index << 8)), 24);
  row.next_hop = net::Ipv4Address(192, 168, 0, 2);
  row.as_path = "3000 104";
  return row;
}

constexpr auto kCycle = sim::Duration::minutes(15);

/// A deterministic mutating table history whose derived fields follow the
/// reconstruction recurrence exactly (the router "reports" recurrence-
/// consistent uptimes), so reconstructed snapshots compare fully equal.
std::vector<Snapshot> synth_history(int cycles, std::uint32_t seed = 7) {
  std::mt19937 rng(seed);
  std::vector<Snapshot> history;
  Snapshot current;
  current.router_name = "fixw";
  for (std::uint32_t i = 0; i < 40; ++i) current.routes.upsert(route(i, 3));
  for (std::uint32_t i = 0; i < 12; ++i) {
    current.pairs.upsert(pair(0x0A010100u + i, i % 5, 4.0 + i));
  }
  for (std::uint32_t i = 0; i < 6; ++i) current.sa_cache.upsert(sa(0x0A010100u + i, i));
  for (std::uint32_t i = 0; i < 8; ++i) current.mbgp_routes.upsert(mbgp(i));

  for (int cycle = 0; cycle < cycles; ++cycle) {
    if (cycle > 0) {
      current.pairs.advance_derived(kCycle);
      current.routes.advance_derived(kCycle);
      current.sa_cache.advance_derived(kCycle);
      // Churn: a route flap, a rate change, an SA appearing or expiring.
      // Every upsert alters a *stable* field (the cycle number feeds it), so
      // the delta-vs-truth comparison is exact: a re-upserted row with only
      // changed derived fields would rightly be absent from the delta.
      current.routes.upsert(route(rng() % 40, 3 + cycle));
      current.pairs.upsert(pair(0x0A010100u + rng() % 12, rng() % 5,
                                static_cast<double>(cycle * 100) +
                                    static_cast<double>(rng() % 90)));
      if (rng() % 3 == 0) {
        current.sa_cache.erase(sa(0x0A010100u + rng() % 6, rng() % 6).key());
      } else {
        SaRow entry = sa(0x0A010100u + rng() % 6, rng() % 6);
        entry.via_peer =
            net::Ipv4Address(0x0A000300u + static_cast<std::uint32_t>(cycle));
        current.sa_cache.upsert(entry);
      }
      if (rng() % 4 == 0) current.mbgp_routes.upsert(mbgp(rng() % 8));
    }
    current.captured = sim::TimePoint::start() + kCycle * std::int64_t{cycle};
    history.push_back(current);
  }
  return history;
}

ArchiveCycleMeta meta_for(int cycle) {
  ArchiveCycleMeta meta;
  meta.stale = cycle % 3 == 0;
  meta.stale_tables = static_cast<std::uint32_t>(cycle % 4);
  meta.collection_failures = static_cast<std::uint32_t>(cycle % 2);
  meta.consecutive_failures = static_cast<std::uint32_t>(cycle % 5);
  meta.parse_warnings = static_cast<std::uint32_t>(cycle % 7);
  meta.capture_attempts = static_cast<std::uint64_t>(5 + cycle);
  meta.collection_latency = sim::Duration::seconds(cycle + 1);
  return meta;
}

void expect_tables_equal(const Snapshot& got, const Snapshot& want,
                         const std::string& label) {
  EXPECT_EQ(got.pairs, want.pairs) << label;
  EXPECT_EQ(got.routes, want.routes) << label;
  EXPECT_EQ(got.sa_cache, want.sa_cache) << label;
  EXPECT_EQ(got.mbgp_routes, want.mbgp_routes) << label;
}

TEST(Archive, WriteReadRoundTripAcrossKeyframesAndDeltas) {
  const std::string path = temp_path("roundtrip.marc");
  const std::vector<Snapshot> history = synth_history(13);
  ArchiveOptions options;
  options.keyframe_interval = 4;
  options.fsync_on_keyframe = false;
  {
    ArchiveWriter writer(path, options);
    for (int i = 0; i < static_cast<int>(history.size()); ++i) {
      writer.append(history[static_cast<std::size_t>(i)], meta_for(i));
    }
    EXPECT_EQ(writer.cycles_written(), history.size());
  }

  const ArchiveReader reader(path);
  EXPECT_TRUE(reader.recovery().clean);
  ASSERT_EQ(reader.size(), history.size());
  for (std::size_t i = 0; i < history.size(); ++i) {
    EXPECT_EQ(reader.time_at(i), history[i].captured);
    EXPECT_EQ(reader.meta_at(i), meta_for(static_cast<int>(i)));
    const Snapshot rebuilt = reader.snapshot(i);
    expect_tables_equal(rebuilt, history[i], "cycle " + std::to_string(i));
    EXPECT_EQ(rebuilt.router_name, "fixw");
    EXPECT_EQ(rebuilt.captured, history[i].captured);
    // Derived tables are re-derived, never stored.
    EXPECT_EQ(rebuilt.participants, derive_participants(history[i].pairs));
    EXPECT_EQ(rebuilt.sessions, derive_sessions(history[i].pairs));
  }
  // Key-frames fall where the interval says.
  for (std::size_t i = 0; i < reader.size(); ++i) {
    EXPECT_EQ(reader.keyframe_at(i), i % 4 == 0) << "cycle " << i;
  }
}

TEST(Archive, StreamingIterationMatchesRandomAccess) {
  const std::string path = temp_path("foreach.marc");
  const std::vector<Snapshot> history = synth_history(9);
  ArchiveOptions options;
  options.keyframe_interval = 3;
  options.fsync_on_keyframe = false;
  {
    ArchiveWriter writer(path, options);
    for (int i = 0; i < 9; ++i) writer.append(history[static_cast<std::size_t>(i)], meta_for(i));
  }
  const ArchiveReader reader(path);
  std::size_t seen = 0;
  reader.for_each([&](std::size_t index, const Snapshot& snapshot,
                      const ArchiveCycleMeta& meta) {
    EXPECT_EQ(index, seen);
    expect_tables_equal(snapshot, history[index], "stream cycle " + std::to_string(index));
    EXPECT_EQ(meta, meta_for(static_cast<int>(index)));
    ++seen;
  });
  EXPECT_EQ(seen, 9u);
}

TEST(Archive, TruncationAtEveryByteOffsetRecoversAllCompleteCycles) {
  const std::string path = temp_path("truncate.marc");
  const std::vector<Snapshot> history = synth_history(8);
  ArchiveOptions options;
  options.keyframe_interval = 3;
  options.fsync_on_keyframe = false;

  // Record the record boundaries as we write.
  std::vector<std::uint64_t> boundaries;  // file size after header/record k
  {
    ArchiveWriter writer(path, options);
    boundaries.push_back(writer.bytes_written());  // header only
    for (int i = 0; i < 8; ++i) {
      writer.append(history[static_cast<std::size_t>(i)], meta_for(i));
      boundaries.push_back(writer.bytes_written());
    }
  }
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
  }
  ASSERT_EQ(bytes.size(), boundaries.back());

  const std::string truncated_path = temp_path("truncate.cut.marc");
  for (std::size_t cut = 0; cut <= bytes.size(); ++cut) {
    {
      std::ofstream out(truncated_path, std::ios::binary | std::ios::trunc);
      out.write(bytes.data(), static_cast<std::streamsize>(cut));
    }
    // Complete cycles whose frame fully fits under the cut.
    std::size_t expected = 0;
    while (expected + 1 < boundaries.size() && boundaries[expected + 1] <= cut) {
      ++expected;
    }
    const ArchiveReader reader(truncated_path);
    ASSERT_EQ(reader.size(), expected) << "cut at byte " << cut;
    const bool on_boundary =
        cut == 0 || (cut >= boundaries.front() &&
                     std::find(boundaries.begin(), boundaries.end(), cut) !=
                         boundaries.end());
    EXPECT_EQ(reader.recovery().clean, on_boundary) << "cut at byte " << cut;
    if (!on_boundary) {
      EXPECT_FALSE(reader.recovery().reason.empty()) << "cut at byte " << cut;
      EXPECT_GT(reader.recovery().bytes_dropped, 0u) << "cut at byte " << cut;
    }
    // Every recovered cycle is intact, not just present.
    if (expected > 0) {
      expect_tables_equal(reader.snapshot(expected - 1), history[expected - 1],
                          "cut at byte " + std::to_string(cut));
    }
  }
  std::remove(truncated_path.c_str());
}

TEST(Archive, MidFileCorruptionDropsFromDamagePointOn) {
  const std::string path = temp_path("corrupt.marc");
  const std::vector<Snapshot> history = synth_history(6);
  ArchiveOptions options;
  options.keyframe_interval = 2;
  options.fsync_on_keyframe = false;
  std::vector<std::uint64_t> boundaries;
  {
    ArchiveWriter writer(path, options);
    boundaries.push_back(writer.bytes_written());
    for (int i = 0; i < 6; ++i) {
      writer.append(history[static_cast<std::size_t>(i)], meta_for(i));
      boundaries.push_back(writer.bytes_written());
    }
  }
  // Flip one byte inside record 3's payload.
  std::fstream file(path, std::ios::binary | std::ios::in | std::ios::out);
  file.seekp(static_cast<std::streamoff>(boundaries[3] + 12));
  char byte = 0;
  file.seekg(static_cast<std::streamoff>(boundaries[3] + 12));
  file.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x5A);
  file.seekp(static_cast<std::streamoff>(boundaries[3] + 12));
  file.write(&byte, 1);
  file.close();

  const ArchiveReader reader(path);
  EXPECT_EQ(reader.size(), 3u);
  EXPECT_FALSE(reader.recovery().clean);
  EXPECT_EQ(reader.recovery().reason, "crc mismatch");
  expect_tables_equal(reader.snapshot(2), history[2], "pre-damage cycle");
}

TEST(Archive, AblationFullSnapshotsReconstructIdenticallyToDeltas) {
  // Satellite: the store_deltas = false ablation (every record a key-frame)
  // must round-trip to exactly the tables the delta-encoded path yields.
  const std::vector<Snapshot> history = synth_history(11);
  const std::string delta_path = temp_path("ablate.delta.marc");
  const std::string full_path = temp_path("ablate.full.marc");
  ArchiveOptions delta_options;
  delta_options.keyframe_interval = 4;
  delta_options.fsync_on_keyframe = false;
  ArchiveOptions full_options = delta_options;
  full_options.store_deltas = false;
  {
    ArchiveWriter delta_writer(delta_path, delta_options);
    ArchiveWriter full_writer(full_path, full_options);
    for (int i = 0; i < 11; ++i) {
      delta_writer.append(history[static_cast<std::size_t>(i)], meta_for(i));
      full_writer.append(history[static_cast<std::size_t>(i)], meta_for(i));
    }
    // Deltas must actually be the smaller encoding on this churn profile.
    EXPECT_LT(delta_writer.bytes_written(), full_writer.bytes_written());
  }
  const ArchiveReader delta_reader(delta_path);
  const ArchiveReader full_reader(full_path);
  ASSERT_EQ(delta_reader.size(), full_reader.size());
  for (std::size_t i = 0; i < delta_reader.size(); ++i) {
    EXPECT_TRUE(full_reader.keyframe_at(i));
    const Snapshot from_delta = delta_reader.snapshot(i);
    const Snapshot from_full = full_reader.snapshot(i);
    expect_tables_equal(from_delta, from_full, "cycle " + std::to_string(i));
    expect_tables_equal(from_delta, history[i], "truth cycle " + std::to_string(i));
  }
}

TEST(Archive, SnapshotAtOnAndAdjacentToKeyframeBoundaries) {
  const std::string path = temp_path("boundary.marc");
  const std::vector<Snapshot> history = synth_history(12);
  ArchiveOptions options;
  options.keyframe_interval = 4;  // key-frames at cycles 0, 4, 8
  options.fsync_on_keyframe = false;
  {
    ArchiveWriter writer(path, options);
    for (const Snapshot& snapshot : history) writer.append(snapshot);
  }
  const ArchiveReader reader(path);

  // Index adjacency around each key-frame.
  for (const std::size_t keyframe : {std::size_t{4}, std::size_t{8}}) {
    ASSERT_TRUE(reader.keyframe_at(keyframe));
    expect_tables_equal(reader.snapshot(keyframe - 1), history[keyframe - 1],
                        "before key-frame");
    expect_tables_equal(reader.snapshot(keyframe), history[keyframe], "on key-frame");
    expect_tables_equal(reader.snapshot(keyframe + 1), history[keyframe + 1],
                        "after key-frame");
  }

  // Time lookup: exactly on a cycle instant, between cycles, before first.
  const sim::TimePoint on_keyframe = history[8].captured;
  expect_tables_equal(reader.snapshot_at(on_keyframe), history[8], "at instant");
  expect_tables_equal(reader.snapshot_at(on_keyframe + sim::Duration::minutes(1)),
                      history[8], "just after instant");
  expect_tables_equal(reader.snapshot_at(on_keyframe - sim::Duration::minutes(1)),
                      history[7], "just before instant");
  EXPECT_EQ(reader.index_at_or_before(history.back().captured), 11u);
  EXPECT_EQ(reader.index_at_or_before(sim::TimePoint::start()), 0u);
  EXPECT_FALSE(
      reader.index_at_or_before(sim::TimePoint::start() - sim::Duration::seconds(1))
          .has_value());
  EXPECT_THROW(
      reader.snapshot_at(sim::TimePoint::start() - sim::Duration::seconds(1)),
      std::out_of_range);
  EXPECT_EQ(reader.first_time(), history.front().captured);
  EXPECT_EQ(reader.last_time(), history.back().captured);
}

TEST(Archive, ExactKeyframeLookupDecodesExactlyOneRecord) {
  const std::string path = temp_path("boundary_decodes.marc");
  const std::vector<Snapshot> history = synth_history(12);
  ArchiveOptions options;
  options.keyframe_interval = 4;  // key-frames at cycles 0, 4, 8
  options.fsync_on_keyframe = false;
  {
    ArchiveWriter writer(path, options);
    for (const Snapshot& snapshot : history) writer.append(snapshot);
  }
  const ArchiveReader reader(path);

  // The O(1) back-pointer: every index resolves to its governing key-frame.
  for (std::size_t i = 0; i < reader.size(); ++i) {
    EXPECT_EQ(reader.keyframe_index_before(i), (i / 4) * 4) << "index " << i;
  }

  // A query landing exactly on a key-frame timestamp must decode that one
  // record — never the preceding delta run.
  for (const std::size_t keyframe : {std::size_t{0}, std::size_t{4}, std::size_t{8}}) {
    const std::uint64_t before = reader.records_decoded();
    expect_tables_equal(reader.snapshot_at(history[keyframe].captured),
                        history[keyframe], "exact key-frame instant");
    EXPECT_EQ(reader.records_decoded() - before, 1u)
        << "key-frame " << keyframe << " pulled in its delta run";
  }

  // One cycle past a key-frame costs exactly two decodes (frame + delta)...
  const std::uint64_t before_delta = reader.records_decoded();
  expect_tables_equal(reader.snapshot_at(history[5].captured), history[5],
                      "key-frame plus one delta");
  EXPECT_EQ(reader.records_decoded() - before_delta, 2u);

  // ...and the worst case is bounded by the interval, not the archive size.
  const std::uint64_t before_worst = reader.records_decoded();
  expect_tables_equal(reader.snapshot_at(history[11].captured), history[11],
                      "end of a delta run");
  EXPECT_EQ(reader.records_decoded() - before_worst, 4u);
}

TEST(Archive, CompactionRewritesKeyframesAndDropsHorizon) {
  const std::string path = temp_path("compact.in.marc");
  const std::string out_path = temp_path("compact.out.marc");
  const std::vector<Snapshot> history = synth_history(20);
  ArchiveOptions options;
  options.keyframe_interval = 2;
  options.fsync_on_keyframe = false;
  {
    ArchiveWriter writer(path, options);
    for (int i = 0; i < 20; ++i) writer.append(history[static_cast<std::size_t>(i)], meta_for(i));
  }

  CompactionOptions compaction;
  compaction.keyframe_interval = 8;
  compaction.drop_before = history[8].captured;
  const CompactionStats stats = compact_archive(path, out_path, compaction);
  EXPECT_EQ(stats.cycles_in, 20u);
  EXPECT_EQ(stats.cycles_dropped, 8u);
  EXPECT_EQ(stats.cycles_out, 12u);
  EXPECT_GT(stats.bytes_in, 0u);
  EXPECT_GT(stats.bytes_out, 0u);

  const ArchiveReader compacted(out_path);
  ASSERT_EQ(compacted.size(), 12u);
  for (std::size_t i = 0; i < compacted.size(); ++i) {
    EXPECT_EQ(compacted.time_at(i), history[i + 8].captured);
    EXPECT_EQ(compacted.meta_at(i), meta_for(static_cast<int>(i) + 8));
    EXPECT_EQ(compacted.keyframe_at(i), i % 8 == 0) << "cycle " << i;
    expect_tables_equal(compacted.snapshot(i), history[i + 8],
                        "compacted cycle " + std::to_string(i));
  }
}

TEST(Archive, EmptyAndDamagedFiles) {
  // A freshly created archive with no cycles reads back empty and clean.
  const std::string path = temp_path("empty.marc");
  {
    ArchiveWriter writer(path);
  }
  const ArchiveReader empty(path);
  EXPECT_EQ(empty.size(), 0u);
  EXPECT_TRUE(empty.recovery().clean);
  EXPECT_THROW(static_cast<void>(empty.first_time()), std::out_of_range);
  EXPECT_THROW(static_cast<void>(empty.snapshot(0)), std::out_of_range);

  // Missing file: error.
  EXPECT_THROW({ ArchiveReader missing(temp_path("nonesuch.marc")); },
               std::runtime_error);

  // Wrong magic: error (not a torn tail — a different file format).
  const std::string garbage_path = temp_path("garbage.marc");
  {
    std::ofstream out(garbage_path, std::ios::binary);
    out << "this is not an archive";
  }
  EXPECT_THROW({ ArchiveReader garbage(garbage_path); }, std::runtime_error);

  // A file cut inside the 8-byte header holds zero recoverable cycles but
  // still opens.
  const std::string stub_path = temp_path("stub.marc");
  {
    std::ofstream out(stub_path, std::ios::binary);
    out << "MAR";
  }
  const ArchiveReader stub(stub_path);
  EXPECT_EQ(stub.size(), 0u);
  EXPECT_FALSE(stub.recovery().clean);
}

TEST(Archive, WriterRejectsBadOptionsAndClosedAppends) {
  EXPECT_THROW(
      {
        ArchiveOptions bad;
        bad.keyframe_interval = 0;
        ArchiveWriter writer(temp_path("bad.marc"), bad);
      },
      std::invalid_argument);
  ArchiveWriter writer(temp_path("closed.marc"));
  writer.close();
  EXPECT_THROW(writer.append(Snapshot{}), std::runtime_error);
}

// --- The acceptance run: live scenario vs offline replay -------------------

class ArchiveReplay : public ::testing::Test {
 protected:
  static workload::ScenarioConfig scenario_config() {
    workload::ScenarioConfig config;
    config.seed = 21;
    config.domains = 4;
    config.hosts_per_domain = 6;
    config.dvmrp_prefixes_per_domain = 6;
    config.report_loss = 0.02;
    config.timer_scale = 1;
    config.full_timers = true;
    config.generator.session_arrivals_per_hour = 40.0;
    config.generator.bursts_per_day = 0.0;
    return config;
  }
};

TEST_F(ArchiveReplay, FiveHundredCycleScenarioReplaysByteIdentically) {
  // Record a >= 500-cycle live run with the archive sink on, then rebuild
  // Fig 3 and Fig 7 purely from the file. The acceptance bar is byte-equal
  // to_csv output against the live series.
  workload::FixwScenario scenario(scenario_config());
  scenario.start();

  MantraConfig config;
  config.cycle = sim::Duration::minutes(1);
  config.archive_dir = temp_path("replay-archive");
  config.archive.keyframe_interval = 96;
  config.archive.fsync_on_keyframe = false;  // keep the test fast
  auto monitor = std::make_unique<Mantra>(scenario.engine(), config);
  monitor->add_target(scenario.network().router(scenario.fixw_node()));
  monitor->start();
  scenario.engine().run_until(sim::TimePoint::start() + sim::Duration::minutes(505));

  const std::vector<CycleResult> live = monitor->target_view("fixw").results();
  ASSERT_GE(live.size(), 500u);
  const ArchiveWriter* sink = monitor->target_view("fixw").archive();
  ASSERT_NE(sink, nullptr);
  EXPECT_EQ(sink->cycles_written(), live.size());
  const RouteMonitor& live_monitor = monitor->target_view("fixw").route_monitor();
  const std::uint64_t live_total_changes = live_monitor.total_changes();
  const std::size_t live_completed_routes = live_monitor.completed_route_count();
  const double live_mean_lifetime = live_monitor.mean_completed_lifetime_s();
  // Destroying the monitor closes (flushes + syncs) the archive sink; the
  // file must then be complete and clean.
  monitor.reset();

  const ArchiveReader reader(config.archive_dir + "/fixw.marc");
  EXPECT_TRUE(reader.recovery().clean);
  ASSERT_EQ(reader.size(), live.size());

  ReplayOptions replay_options;
  replay_options.sender_threshold_kbps = config.sender_threshold_kbps;
  replay_options.spike_window = config.spike_window;
  replay_options.spike_k = config.spike_k;
  const ReplayRun replay = replay_archive(reader, replay_options);
  ASSERT_EQ(replay.results.size(), live.size());

  // Every archived field of every cycle result matches the live run exactly.
  for (std::size_t i = 0; i < live.size(); ++i) {
    EXPECT_EQ(replay.results[i], live[i]) << "cycle " << i;
  }

  // Fig 3 (usage counts) and Fig 7 (DVMRP routes): byte-identical CSV.
  const auto series_pair = [&](const char* name,
                               double (*extract)(const CycleResult&)) {
    const TimeSeries from_live = series_from(live, name, extract);
    const TimeSeries from_archive = series_from(replay.results, name, extract);
    EXPECT_EQ(from_live.to_csv(), from_archive.to_csv()) << name;
  };
  series_pair("sessions",
              [](const CycleResult& r) { return static_cast<double>(r.usage.sessions); });
  series_pair("participants", [](const CycleResult& r) {
    return static_cast<double>(r.usage.participants);
  });
  series_pair("active_sessions", [](const CycleResult& r) {
    return static_cast<double>(r.usage.active_sessions);
  });
  series_pair("senders",
              [](const CycleResult& r) { return static_cast<double>(r.usage.senders); });
  series_pair("dvmrp_routes", [](const CycleResult& r) {
    return static_cast<double>(r.dvmrp_valid_routes);
  });
  series_pair("route_changes", [](const CycleResult& r) {
    return static_cast<double>(r.route_changes);
  });

  // The route monitor's accumulated statistics replay identically too.
  EXPECT_EQ(replay.route_monitor.total_changes(), live_total_changes);
  EXPECT_EQ(replay.route_monitor.completed_route_count(), live_completed_routes);
  EXPECT_DOUBLE_EQ(replay.route_monitor.mean_completed_lifetime_s(),
                   live_mean_lifetime);
}

}  // namespace
}  // namespace mantra::core
