#include <gtest/gtest.h>

#include "core/collect.hpp"
#include "core/parse.hpp"
#include "router/cli.hpp"
#include "router/network.hpp"

namespace mantra::core {
namespace {

// Test-local convenience over the canonical in-place parse API: bundle the
// table and warnings so assertions read naturally.
template <typename TableType>
struct Parsed {
  TableType table;
  std::vector<std::string> warnings;
};

Parsed<PairTable> parsed_mroute_count(std::string_view text) {
  Parsed<PairTable> out;
  parse_mroute_count(text, out.table, &out.warnings);
  return out;
}
Parsed<RouteTable> parsed_dvmrp_route(std::string_view text) {
  Parsed<RouteTable> out;
  parse_dvmrp_route(text, out.table, &out.warnings);
  return out;
}
Parsed<SaTable> parsed_msdp_sa_cache(std::string_view text) {
  Parsed<SaTable> out;
  parse_msdp_sa_cache(text, out.table, &out.warnings);
  return out;
}
Parsed<MbgpTable> parsed_mbgp(std::string_view text) {
  Parsed<MbgpTable> out;
  parse_mbgp(text, out.table, &out.warnings);
  return out;
}

// --- preprocess --------------------------------------------------------------

TEST(Preprocess, StripsTelnetNoise) {
  const std::string raw =
      "\r\nUser Access Verification\r\n\r\nPassword: \r\n"
      "fixw> terminal length 0\r\n"
      "fixw> show ip mroute\r\n"
      "IP Multicast Routing Table\r\n"
      "data line  \r\n"
      "fixw> ";
  const std::string clean = preprocess(raw);
  EXPECT_EQ(clean, "IP Multicast Routing Table\ndata line\n");
}

TEST(Preprocess, KeepsMbgpStatusLines) {
  EXPECT_EQ(preprocess("*> 10.0.0.0/16 192.168.0.2 100\r\n"),
            "*> 10.0.0.0/16 192.168.0.2 100\n");
}

TEST(Preprocess, CollapsesBlankRuns) {
  EXPECT_EQ(preprocess("a\n\n\n\nb\n"), "a\n\nb\n");
}

TEST(Preprocess, EmptyInput) { EXPECT_EQ(preprocess(""), ""); }

TEST(Preprocess, CrlfOnlyLinesCollapseToNothing) {
  EXPECT_EQ(preprocess("\r\n\r\n\r\n"), "");
  // CRLF-only runs between data lines collapse to one blank line.
  EXPECT_EQ(preprocess("a\r\n\r\n\r\n\r\nb\r\n"), "a\n\nb\n");
}

TEST(Preprocess, TruncatedFinalLineWithoutNewline) {
  EXPECT_EQ(preprocess("complete line\npartial li"), "complete line\npartial li\n");
  EXPECT_EQ(preprocess("only partial"), "only partial\n");
}

TEST(Preprocess, PromptLookalikeDataLinesAreKept) {
  // '>' embedded mid-token is data, not a prompt.
  EXPECT_EQ(preprocess("a>b rest of line\n"), "a>b rest of line\n");
  // A token with non-hostname characters before '>' is data.
  EXPECT_EQ(preprocess("(*,G)> entry\n"), "(*,G)> entry\n");
  // A real prompt-echo line is still stripped.
  EXPECT_EQ(preprocess("fixw> show ip mbgp\n*> 10.0.0.0/16 x\n"),
            "*> 10.0.0.0/16 x\n");
}

TEST(Preprocess, WhitespaceOnlyInput) {
  EXPECT_EQ(preprocess("   \t \n \r\n"), "");
}

// --- parse_uptime --------------------------------------------------------------

TEST(ParseUptime, Forms) {
  EXPECT_EQ(parse_uptime("01:02:05"), sim::Duration::seconds(3725));
  EXPECT_EQ(parse_uptime("2d03h"), sim::Duration::days(2) + sim::Duration::hours(3));
  EXPECT_EQ(parse_uptime(" 00:00:09 "), sim::Duration::seconds(9));
  EXPECT_FALSE(parse_uptime("bogus").has_value());
  EXPECT_FALSE(parse_uptime("1:2").has_value());
}

// --- parsers on hand-written text ------------------------------------------------

TEST(ParseMrouteCount, ExtractsPairs) {
  const char* text =
      "IP Multicast Statistics\n"
      "2 routes using 656 bytes of memory\n"
      "Counts: Pkt Count/Pkts per second/Avg Pkt Size/Kilobits per second\n"
      "\n"
      "Group: 224.2.0.5\n"
      "  Source: 10.1.1.2/32, Forwarding: 1200/12/512/48.25, Other: 1200/0/0\n"
      "    Average: 44.10 kbps, Uptime: 00:15:00\n"
      "  Source: 10.2.1.9/32, Forwarding: 30/0/512/1.20, Other: 30/0/0\n"
      "    Average: 1.10 kbps, Uptime: 01:00:30\n";
  const auto outcome = parsed_mroute_count(text);
  EXPECT_TRUE(outcome.warnings.empty());
  ASSERT_EQ(outcome.table.size(), 2u);
  const PairRow* row = outcome.table.find({*net::Ipv4Address::parse("10.1.1.2"),
                                           *net::Ipv4Address::parse("224.2.0.5")});
  ASSERT_NE(row, nullptr);
  EXPECT_DOUBLE_EQ(row->current_kbps, 48.25);
  EXPECT_DOUBLE_EQ(row->average_kbps, 44.10);
  EXPECT_EQ(row->packets, 1200u);
  EXPECT_EQ(row->uptime, sim::Duration::minutes(15));
}

TEST(ParseMrouteCount, WarnsOnGarbageDataLines) {
  const auto outcome = parsed_mroute_count("Group: not-an-address\n");
  EXPECT_EQ(outcome.table.size(), 0u);
  EXPECT_EQ(outcome.warnings.size(), 1u);
}

TEST(ParseMrouteCount, SourceBeforeGroupIsWarned) {
  const auto outcome = parsed_mroute_count(
      "  Source: 10.1.1.2/32, Forwarding: 1/0/512/0.5, Other: 1/0/0\n");
  EXPECT_EQ(outcome.table.size(), 0u);
  EXPECT_FALSE(outcome.warnings.empty());
}

TEST(ParseDvmrpRoute, ExtractsRoutes) {
  const char* text =
      "DVMRP Routing Table - 2 entries\n"
      "10.3.16.0/24 [0/3] uptime 01:23:45, expires 00:02:15\n"
      "    via 192.168.3.2, tunnel0\n"
      "10.4.0.0/16 [0/32] uptime 2d03h, expires holddown\n"
      "    via 192.168.4.2, tunnel1\n";
  const auto outcome = parsed_dvmrp_route(text);
  EXPECT_TRUE(outcome.warnings.empty());
  ASSERT_EQ(outcome.table.size(), 2u);
  const RouteRow* row = outcome.table.find(*net::Prefix::parse("10.3.16.0/24"));
  ASSERT_NE(row, nullptr);
  EXPECT_EQ(row->metric, 3);
  EXPECT_EQ(row->next_hop, *net::Ipv4Address::parse("192.168.3.2"));
  EXPECT_EQ(row->interface, "tunnel0");
  EXPECT_FALSE(row->holddown);
  EXPECT_EQ(row->uptime, sim::Duration::hours(1) + sim::Duration::minutes(23) +
                             sim::Duration::seconds(45));
  EXPECT_TRUE(outcome.table.find(*net::Prefix::parse("10.4.0.0/16"))->holddown);
}

TEST(ParseMsdpSaCache, ExtractsEntries) {
  const char* text =
      "MSDP Source-Active Cache - 2 entries\n"
      "(10.2.1.7, 224.2.3.4), RP 192.168.1.2, via peer 192.168.2.2, 00:05:00\n"
      "(10.1.1.9, 224.4.1.2), RP 10.1.1.1, local, 00:07:21\n";
  const auto outcome = parsed_msdp_sa_cache(text);
  EXPECT_TRUE(outcome.warnings.empty());
  ASSERT_EQ(outcome.table.size(), 2u);
  const SaRow* remote = outcome.table.find({*net::Ipv4Address::parse("10.2.1.7"),
                                            *net::Ipv4Address::parse("224.2.3.4")});
  ASSERT_NE(remote, nullptr);
  EXPECT_EQ(remote->origin_rp, *net::Ipv4Address::parse("192.168.1.2"));
  EXPECT_EQ(remote->via_peer, *net::Ipv4Address::parse("192.168.2.2"));
  EXPECT_EQ(remote->age, sim::Duration::minutes(5));
  const SaRow* local = outcome.table.find({*net::Ipv4Address::parse("10.1.1.9"),
                                           *net::Ipv4Address::parse("224.4.1.2")});
  ASSERT_NE(local, nullptr);
  EXPECT_TRUE(local->via_peer.is_unspecified());
}

TEST(ParseMbgp, ExtractsBestPaths) {
  const char* text =
      "MBGP table version is 1, local router ID is 192.168.0.1\n"
      "Status codes: * valid, > best\n"
      "   Network            Next Hop            Path\n"
      "*> 10.3.0.0/16        192.168.3.2         103\n"
      "*> 10.4.0.0/16        192.168.0.1         3000 104\n";
  const auto outcome = parsed_mbgp(text);
  EXPECT_TRUE(outcome.warnings.empty());
  ASSERT_EQ(outcome.table.size(), 2u);
  const MbgpRow* row = outcome.table.find(*net::Prefix::parse("10.4.0.0/16"));
  ASSERT_NE(row, nullptr);
  EXPECT_EQ(row->as_path, "3000 104");
}

// --- Round trip: router CLI -> collector -> parser ------------------------------

class RoundTrip : public ::testing::Test {
 protected:
  RoundTrip() : rng_(5), network_(engine_, topo_, rng_, router::NetworkConfig{}) {
    r1_ = topo_.add_router("r1");
    r2_ = topo_.add_router("r2");
    topo_.connect(r1_, r2_, *net::Prefix::parse("192.168.0.0/30"));
    const auto lan = topo_.create_lan(*net::Prefix::parse("10.1.1.0/24"));
    topo_.attach_to_lan(r1_, lan);
    host_ = topo_.add_host("h1");
    topo_.attach_to_lan(host_, lan);

    router::RouterConfig config;
    config.dvmrp_enabled = true;
    config.dvmrp.timers_enabled = false;
    config.pim_enabled = true;
    config.pim.timers_enabled = false;
    config.pim.rp_map = {{net::kMulticastRange, net::Ipv4Address(10, 1, 1, 1)}};
    config.igmp.timers_enabled = false;
    network_.add_router(r1_, config);
    network_.add_router(r2_, config);
    network_.start();
    network_.router(r1_)->dvmrp()->send_reports_now();
    network_.router(r2_)->dvmrp()->send_reports_now();
    engine_.run_until(engine_.now() + sim::Duration::seconds(2));
  }

  sim::Engine engine_;
  sim::Rng rng_;
  net::Topology topo_;
  router::Network network_;
  net::NodeId r1_, r2_, host_;
};

TEST_F(RoundTrip, DvmrpTableSurvivesScrapeAndParse) {
  const CaptureReport report = Collector().capture(*network_.router(r1_), engine_.now());
  ASSERT_TRUE(report.all_ok());
  const RawCapture* capture = report.find("show ip dvmrp route");
  ASSERT_NE(capture, nullptr);
  const std::string dvmrp_text = capture->clean_text;
  const auto outcome = parsed_dvmrp_route(dvmrp_text);
  EXPECT_TRUE(outcome.warnings.empty());
  // Parsed route count matches the router's actual table.
  EXPECT_EQ(outcome.table.size(),
            network_.router(r1_)->dvmrp()->routes().size());
}

TEST_F(RoundTrip, MrouteCountSurvivesScrapeAndParse) {
  // Put a flow through r1 so there is something to scrape.
  network_.host_join(host_, net::Ipv4Address(224, 2, 0, 5));
  network_.flow_start(host_, net::Ipv4Address(224, 2, 0, 5), 100.0,
                      router::MfcMode::kDense);
  engine_.run_until(engine_.now() + sim::Duration::minutes(10));

  const CaptureReport report = Collector().capture(*network_.router(r1_), engine_.now());
  ASSERT_TRUE(report.all_ok());
  const RawCapture* capture = report.find("show ip mroute count");
  ASSERT_NE(capture, nullptr);
  const std::string text = capture->clean_text;
  const auto outcome = parsed_mroute_count(text);
  EXPECT_TRUE(outcome.warnings.empty());
  ASSERT_EQ(outcome.table.size(), 1u);
  const PairRow row = outcome.table.rows()[0];
  EXPECT_DOUBLE_EQ(row.current_kbps, 100.0);
  EXPECT_GT(row.packets, 0u);
  EXPECT_GT(row.uptime.total_seconds(), 500.0);
}

TEST_F(RoundTrip, GarbledTranscriptNeverParsesCleanly) {
  // Regression: unrecognized non-header lines used to be dropped silently,
  // so a transcript with interleaved garbage (two sessions on one tty)
  // could parse with parse_warnings == 0 and nobody would know the table
  // was suspect. Garble every command and check the parsers complain.
  FaultProfile profile;
  profile.garble_p = 1.0;
  FaultInjectingTransport transport(11, profile);
  ASSERT_TRUE(transport.connect(*network_.router(r1_), engine_.now()).ok());

  const TransportResult dvmrp =
      transport.execute(*network_.router(r1_), "show ip dvmrp route", engine_.now());
  ASSERT_EQ(dvmrp.status, TransportStatus::garbled);
  EXPECT_FALSE(parsed_dvmrp_route(preprocess(dvmrp.text)).warnings.empty());

  // Clean reference: the same dump un-garbled still parses warning-free.
  const std::string clean = router::cli::telnet_capture(
      *network_.router(r1_), "show ip dvmrp route", engine_.now());
  EXPECT_TRUE(parsed_dvmrp_route(preprocess(clean)).warnings.empty());

  network_.host_join(host_, net::Ipv4Address(224, 2, 0, 5));
  network_.flow_start(host_, net::Ipv4Address(224, 2, 0, 5), 100.0,
                      router::MfcMode::kDense);
  engine_.run_until(engine_.now() + sim::Duration::minutes(10));
  const TransportResult mroute = transport.execute(
      *network_.router(r1_), "show ip mroute count", engine_.now());
  ASSERT_EQ(mroute.status, TransportStatus::garbled);
  EXPECT_FALSE(parsed_mroute_count(preprocess(mroute.text)).warnings.empty());
  const std::string clean_mroute = router::cli::telnet_capture(
      *network_.router(r1_), "show ip mroute count", engine_.now());
  EXPECT_TRUE(parsed_mroute_count(preprocess(clean_mroute)).warnings.empty());
}

TEST_F(RoundTrip, CaptureRecordsRawAndCleanText) {
  const CaptureReport report = Collector().capture(*network_.router(r1_), engine_.now());
  ASSERT_EQ(report.captures.size(), default_command_set().size());
  EXPECT_TRUE(report.connected);
  EXPECT_TRUE(report.all_ok());
  EXPECT_EQ(report.failure_count(), 0u);
  for (const RawCapture& capture : report.captures) {
    EXPECT_EQ(capture.router_name, "r1");
    EXPECT_EQ(capture.status, CaptureStatus::ok);
    EXPECT_EQ(capture.attempts, 1u);
    EXPECT_NE(capture.raw_text.find("Password:"), std::string::npos);
    EXPECT_EQ(capture.clean_text.find("Password:"), std::string::npos);
  }
}

}  // namespace
}  // namespace mantra::core
