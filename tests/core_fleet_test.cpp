// core/fleet: the aggregation tier merges sharded monitors into one view in
// (shard, name) order regardless of registration order or per-shard
// worker_threads; the live fleet report over >= 4 shards is byte-identical
// to one rebuilt from the shards' .marc archives through QueryEngine; and
// the fleet-merged status reuses the pinned single-monitor semantics
// (never-succeeded staleness spans the whole run).
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <limits>
#include <memory>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "core/fleet.hpp"
#include "core/mantra.hpp"
#include "core/provenance.hpp"
#include "core/query.hpp"
#include "core/report.hpp"
#include "core/teltrace.hpp"
#include "workload/scenario.hpp"

namespace mantra::core {
namespace {

/// Four single-target shards over one FIXW scenario: the hub plus three
/// border routers, each monitored by its own Mantra (own transport factory,
/// own archives, own alert engine). shard-01 collects through a lossy
/// transport so the fixture produces degraded cycles and alert content.
class FleetFixture : public ::testing::Test {
 protected:
  static constexpr std::size_t kShards = 4;

  FleetFixture() : scenario_(make_config()) { scenario_.start(); }

  static workload::ScenarioConfig make_config() {
    workload::ScenarioConfig config;
    config.seed = 41;
    config.domains = 4;
    config.hosts_per_domain = 6;
    config.dvmrp_prefixes_per_domain = 6;
    config.report_loss = 0.05;
    config.timer_scale = 1;
    config.full_timers = true;
    config.generator.session_arrivals_per_hour = 40.0;
    config.generator.bursts_per_day = 0.0;
    return config;
  }

  [[nodiscard]] net::NodeId shard_node(std::size_t index) const {
    return index == 0 ? scenario_.fixw_node()
                      : scenario_.border_nodes().at(index - 1);
  }

  static std::string shard_name(std::size_t index) {
    return "shard-0" + std::to_string(index);
  }

  /// Builds one shard monitor. `faulty` shards collect through a 30%
  /// command-failure transport; `archive_dir` empty disables archiving;
  /// `telemetry` turns on core/telemetry so the shard has a metric registry
  /// and event log for the federation tests to merge; `self_path` non-empty
  /// additionally records a `.mtel` self-telemetry archive (requires
  /// telemetry), which the provenance tests replay for event tails.
  std::unique_ptr<Mantra> make_shard(std::size_t index,
                                     const std::string& archive_dir,
                                     std::size_t worker_threads,
                                     bool telemetry = false,
                                     const std::string& self_path = {}) {
    MantraConfig config;
    config.cycle = sim::Duration::minutes(15);
    config.retry.max_attempts = 2;
    config.worker_threads = worker_threads;
    config.archive_dir = archive_dir;
    config.alerts.enabled = true;  // default rule set, per-shard engine
    config.telemetry.enabled = telemetry;
    config.self.enabled = !self_path.empty();
    config.self.path = self_path;
    config.self.name = shard_name(index);
    const bool faulty = index == 1;
    auto monitor = std::make_unique<Mantra>(
        scenario_.engine(), config,
        [faulty](const std::string& name) -> std::unique_ptr<Transport> {
          FaultProfile profile;
          if (faulty) profile = FaultProfile::command_failure_rate(0.3);
          return std::make_unique<FaultInjectingTransport>(
              per_target_seed(0x5e90a7, name), profile);
        });
    monitor->add_target(scenario_.network().router(shard_node(index)));
    monitor->start();
    return monitor;
  }

  std::vector<std::unique_ptr<Mantra>> make_fleet(
      const std::filesystem::path& archive_base, std::size_t worker_threads,
      bool telemetry = false) {
    std::vector<std::unique_ptr<Mantra>> shards;
    for (std::size_t i = 0; i < kShards; ++i) {
      const std::string dir =
          archive_base.empty() ? std::string()
                               : (archive_base / shard_name(i)).string();
      shards.push_back(make_shard(i, dir, worker_threads, telemetry));
    }
    return shards;
  }

  void run_hours(int hours) {
    scenario_.engine().run_until(scenario_.engine().now() +
                                 sim::Duration::hours(hours));
  }

  workload::FixwScenario scenario_;
};

TEST_F(FleetFixture, StatusMergesShardsInNameOrderWithRollups) {
  auto shards = make_fleet({}, 0);
  run_hours(4);

  FleetAggregator fleet;
  // Registration order is scrambled on purpose: the merge must not see it.
  fleet.add_shard(shard_name(2), *shards[2]);
  fleet.add_shard(shard_name(0), *shards[0]);
  fleet.add_shard(shard_name(3), *shards[3]);
  fleet.add_shard(shard_name(1), *shards[1]);

  EXPECT_EQ(fleet.shard_count(), kShards);
  EXPECT_EQ(fleet.target_count(), kShards);
  const std::vector<std::string> names = fleet.shard_names();
  ASSERT_EQ(names.size(), kShards);
  for (std::size_t i = 0; i < kShards; ++i) EXPECT_EQ(names[i], shard_name(i));

  const FleetStatus status = fleet.status();
  ASSERT_EQ(status.shards.size(), kShards);
  ASSERT_EQ(status.targets.size(), kShards);
  for (std::size_t i = 0; i < kShards; ++i) {
    const FleetStatus::ShardRow& row = status.shards[i];
    EXPECT_EQ(row.shard, shard_name(i));
    EXPECT_EQ(row.targets, 1u);
    EXPECT_EQ(row.healthy + row.degraded + row.unreachable, row.targets);
    EXPECT_GT(row.cycles_run, 0u);
    EXPECT_GT(row.cycles_recorded, 0u);
    // Target rows follow the same shard order, tagged with their owner.
    EXPECT_EQ(status.targets[i].shard, shard_name(i));
    const MonitorStatus shard_status = fleet.shard(shard_name(i)).status();
    ASSERT_EQ(shard_status.targets.size(), 1u);
    EXPECT_EQ(status.targets[i].target.name, shard_status.targets[0].name);
    EXPECT_EQ(status.targets[i].target.cycles_recorded,
              shard_status.targets[0].cycles_recorded);
    EXPECT_EQ(row.cycles_recorded, shard_status.targets[0].cycles_recorded);
  }
  // The lossy shard actually degraded, so the rollup separates health kinds.
  EXPECT_GT(status.shards[1].stale_cycles, 0u);
  EXPECT_EQ(status.now, scenario_.engine().now());

  // The rendered tables carry the same order: shard column ascending.
  const SummaryTable shard_table = status.shard_table();
  ASSERT_EQ(shard_table.row_count(), kShards);
  const SummaryTable target_table = status.to_table();
  ASSERT_EQ(target_table.row_count(), kShards);
  for (std::size_t i = 0; i < kShards; ++i) {
    EXPECT_EQ(shard_table.rows()[i][0], shard_name(i));
    EXPECT_EQ(target_table.rows()[i][0], shard_name(i));
  }
}

TEST_F(FleetFixture, RegistrationOrderDoesNotChangeFleetReportBytes) {
  auto shards = make_fleet({}, 0);
  run_hours(4);

  FleetAggregator forward, scrambled;
  for (std::size_t i = 0; i < kShards; ++i) {
    forward.add_shard(shard_name(i), *shards[i]);
  }
  for (const std::size_t i : {std::size_t{3}, std::size_t{1}, std::size_t{0},
                              std::size_t{2}}) {
    scrambled.add_shard(shard_name(i), *shards[i]);
  }
  EXPECT_EQ(render_fleet_html_report(fleet_report_data_from(forward)),
            render_fleet_html_report(fleet_report_data_from(scrambled)));
}

TEST_F(FleetFixture, ShardRegistrationValidates) {
  auto shard = make_shard(0, "", 0);
  FleetAggregator fleet;
  fleet.add_shard("alpha", *shard);
  EXPECT_THROW(fleet.add_shard("alpha", *shard), std::invalid_argument);
  EXPECT_THROW(fleet.add_shard("", *shard), std::invalid_argument);
  EXPECT_THROW(fleet.shard("unknown"), std::out_of_range);
}

TEST_F(FleetFixture, LiveAndQueryReplayFleetReportsAreByteIdentical) {
  const std::filesystem::path base =
      std::filesystem::path(::testing::TempDir()) / "mantra_fleet_replay";
  std::filesystem::remove_all(base);
  auto shards = make_fleet(base, 0);
  run_hours(8);

  FleetAggregator fleet;
  for (std::size_t i = 0; i < kShards; ++i) {
    fleet.add_shard(shard_name(i), *shards[i]);
  }
  const std::string live =
      render_fleet_html_report(fleet_report_data_from(fleet));

  std::vector<std::vector<std::string>> shard_targets;
  for (std::size_t i = 0; i < kShards; ++i) {
    shard_targets.push_back(shards[i]->target_names());
  }
  shards.clear();  // flush every shard's archives

  // Rebuild offline: one QueryEngine per shard directory, full-fidelity
  // replay per target, per-shard rule re-evaluation, same merge.
  std::vector<FleetShardReplay> replayed;
  for (std::size_t i = 0; i < kShards; ++i) {
    QueryEngine engine;
    FleetShardReplay shard;
    shard.shard = shard_name(i);
    shard.rules = default_alert_rules();
    for (const std::string& target : shard_targets[i]) {
      engine.add_archive(target,
                         (base / shard_name(i) / (target + ".marc")).string());
      shard.targets.push_back({target, engine.replay(target).results});
    }
    replayed.push_back(std::move(shard));
  }
  const std::string offline = render_fleet_html_report(
      fleet_report_data_from_replay(std::move(replayed)));
  EXPECT_EQ(live, offline);
  // The lossy shard produced real alert content to compare.
  EXPECT_NE(live.find("Fleet alerts"), std::string::npos);
  EXPECT_NE(live.find("shard-01"), std::string::npos);
}

// --- fleet provenance --------------------------------------------------------

// The fleet-wide explain merge is the same total order as the fleet alert
// table: (fired_at, shard, rule, target), pending_at tiebreak — pinned on
// synthetic data so the comparator can't drift.
TEST(FleetProvenanceMerge, OrdersByFiredAtShardRuleTarget) {
  const auto record = [](int fired_min, const char* rule, const char* target) {
    ProvenanceRecord out;
    out.rule = rule;
    out.target = target;
    out.fired_at = sim::TimePoint::start() + sim::Duration::minutes(fired_min);
    return out;
  };
  FleetReportData data;
  data.shards.push_back({"a", {}});
  data.shards.push_back({"b", {}});
  // Capture order within each shard is deliberately not the merge order.
  data.shards[0].data.provenance = {record(10, "r1", "t1"),
                                    record(5, "r9", "t9")};
  data.shards[1].data.provenance = {record(10, "r1", "t1"),
                                    record(10, "r0", "t0"),
                                    record(10, "r1", "t0")};

  const FleetProvenance merged = fleet_provenance_from(data);
  ASSERT_EQ(merged.records.size(), 5u);
  ASSERT_EQ(merged.shards.size(), 5u);
  const std::vector<std::string> expect_shards = {"a", "a", "b", "b", "b"};
  const std::vector<std::string> expect_rules = {"r9", "r1", "r0", "r1", "r1"};
  const std::vector<std::string> expect_targets = {"t9", "t1", "t0", "t0",
                                                   "t1"};
  for (std::size_t i = 0; i < merged.records.size(); ++i) {
    EXPECT_EQ(merged.shards[i], expect_shards[i]) << i;
    EXPECT_EQ(merged.records[i].rule, expect_rules[i]) << i;
    EXPECT_EQ(merged.records[i].target, expect_targets[i]) << i;
  }
}

TEST_F(FleetFixture, LiveAndReplayFleetExplanationsAreByteIdentical) {
  const std::filesystem::path base =
      std::filesystem::path(::testing::TempDir()) / "mantra_fleet_explain";
  std::filesystem::remove_all(base);
  std::filesystem::create_directories(base);

  // Shards with archives + self-telemetry (the `.mtel` feeds the replayed
  // event tails) on worker pools, registered in scrambled order.
  std::vector<std::unique_ptr<Mantra>> shards;
  for (std::size_t i = 0; i < kShards; ++i) {
    const std::string dir = (base / shard_name(i)).string();
    shards.push_back(make_shard(i, dir, /*worker_threads=*/2,
                                /*telemetry=*/true,
                                dir + "/" + shard_name(i) + ".mtel"));
  }
  run_hours(8);

  FleetAggregator fleet;
  for (const std::size_t i : {std::size_t{3}, std::size_t{1}, std::size_t{0},
                              std::size_t{2}}) {
    fleet.add_shard(shard_name(i), *shards[i]);
  }
  const FleetProvenance live = fleet_provenance(fleet);
  ASSERT_FALSE(live.records.empty());
  ASSERT_EQ(live.records.size(), live.shards.size());
  // The merge is in (fired_at, shard, rule, target) order.
  for (std::size_t i = 1; i < live.records.size(); ++i) {
    const auto key = [&](std::size_t k) {
      return std::make_tuple(live.records[k].fired_at.total_ms(),
                             live.shards[k], live.records[k].rule,
                             live.records[k].target);
    };
    EXPECT_LE(key(i - 1), key(i)) << i;
  }
  const std::string live_text =
      render_explanations(live.records, ExplainFilter{}, &live.shards);
  EXPECT_NE(live_text.find(" shard=shard-01 "), std::string::npos);

  // Flush everything and rebuild the merged explanations from bytes alone.
  std::vector<std::vector<std::string>> shard_targets;
  for (auto& shard : shards) {
    shard_targets.push_back(shard->target_names());
    shard->self_monitor()->close();
  }
  shards.clear();

  std::vector<FleetShardReplay> replayed;
  for (std::size_t i = 0; i < kShards; ++i) {
    QueryEngine engine;
    FleetShardReplay shard;
    shard.shard = shard_name(i);
    shard.rules = default_alert_rules();
    for (const std::string& target : shard_targets[i]) {
      engine.add_archive(target,
                         (base / shard_name(i) / (target + ".marc")).string());
      shard.targets.push_back({target, engine.replay(target).results});
    }
    TelemetryArchiveReader reader(
        (base / shard_name(i) / (shard_name(i) + ".mtel")).string());
    shard.samples = reader.samples();
    replayed.push_back(std::move(shard));
  }
  const FleetProvenance offline =
      fleet_provenance_from(fleet_report_data_from_replay(std::move(replayed)));
  EXPECT_EQ(live.records, offline.records);
  EXPECT_EQ(live.shards, offline.shards);
  EXPECT_EQ(live_text,
            render_explanations(offline.records, ExplainFilter{},
                                &offline.shards));
  std::filesystem::remove_all(base);
}

TEST_F(FleetFixture, PerShardWorkerPoolsDoNotChangeFleetReportBytes) {
  auto sequential = make_fleet({}, 0);
  auto pooled = make_fleet({}, 2);
  run_hours(4);

  FleetAggregator fleet_seq, fleet_par;
  for (std::size_t i = 0; i < kShards; ++i) {
    fleet_seq.add_shard(shard_name(i), *sequential[i]);
    fleet_par.add_shard(shard_name(i), *pooled[i]);
  }
  EXPECT_EQ(render_fleet_html_report(fleet_report_data_from(fleet_seq)),
            render_fleet_html_report(fleet_report_data_from(fleet_par)));
}

TEST_F(FleetFixture, NeverSucceededTargetKeepsPinnedStalenessFleetWide) {
  // One extra shard whose target is dark from the first cycle: the fleet
  // row must reuse the single-monitor semantics pinned in core_mantra_test
  // (last_success unset, staleness = now - run start, "never" rendering).
  MantraConfig config;
  config.cycle = sim::Duration::minutes(15);
  config.unreachable_after = 2;
  FaultProfile dark;
  dark.connect_refused_p = 1.0;
  Mantra dark_shard(scenario_.engine(), config,
                    std::make_unique<FaultInjectingTransport>(9, dark));
  dark_shard.add_target(scenario_.network().router(shard_node(0)));
  dark_shard.start();
  auto healthy_shard = make_shard(1, "", 0);
  run_hours(2);

  FleetAggregator fleet;
  fleet.add_shard("dark", dark_shard);
  fleet.add_shard("live", *healthy_shard);
  const FleetStatus status = fleet.status();
  ASSERT_EQ(status.targets.size(), 2u);
  const FleetStatus::TargetRow& row = status.targets[0];
  ASSERT_EQ(row.shard, "dark");
  EXPECT_FALSE(row.target.last_success.has_value());
  EXPECT_EQ(row.target.health, TargetHealth::Unreachable);
  EXPECT_EQ(row.target.staleness, status.now - sim::TimePoint::start());
  ASSERT_EQ(status.shards.size(), 2u);
  EXPECT_EQ(status.shards[0].unreachable, 1u);
  EXPECT_EQ(status.shards[0].cycles_recorded, 0u);

  const SummaryTable table = status.to_table();
  const auto last_success = table.column_index("last_success");
  const auto staleness = table.column_index("staleness");
  ASSERT_TRUE(last_success.has_value() && staleness.has_value());
  EXPECT_EQ(table.rows()[0][*last_success], "never");
  EXPECT_EQ(table.rows()[0][*staleness], row.target.staleness.to_string());
}

TEST_F(FleetFixture, FederatedMetricsSumCountersTagGaugesMergeHistograms) {
  auto shards = make_fleet({}, 0, /*telemetry=*/true);
  run_hours(4);

  FleetAggregator fleet;
  for (std::size_t i = 0; i < kShards; ++i) {
    fleet.add_shard(shard_name(i), *shards[i]);
  }
  const MetricsSnapshot merged = federated_metrics(fleet);

  // Counters with equal (name, labels) collapse to one fleet-wide sum.
  std::uint64_t cycles = 0;
  for (const auto& shard : shards) {
    cycles += shard->telemetry().metrics().counter_total("mantra_cycles_total");
  }
  const MetricsSnapshot::CounterSample* total =
      find_counter(merged, "mantra_cycles_total");
  ASSERT_NE(total, nullptr);
  EXPECT_GT(total->value, 0u);
  EXPECT_EQ(total->value, cycles);

  // Gauges keep per-shard identity behind a shard="..." label; the unlabeled
  // original must not leak through.
  EXPECT_EQ(find_gauge(merged, "mantra_targets"), nullptr);
  for (std::size_t i = 0; i < kShards; ++i) {
    const MetricsSnapshot::GaugeSample* targets =
        find_gauge(merged, "mantra_targets", "shard=\"" + shard_name(i) + "\"");
    ASSERT_NE(targets, nullptr) << shard_name(i);
    EXPECT_EQ(targets->value, 1.0);
  }

  // Histograms whose bounds agree across every shard merge bucket-wise.
  const MetricsSnapshot::HistogramSample* duration =
      find_histogram(merged, "mantra_cycle_duration_seconds");
  ASSERT_NE(duration, nullptr);
  std::vector<std::uint64_t> buckets(duration->buckets.size(), 0);
  std::uint64_t observations = 0;
  for (const auto& shard : shards) {
    const MetricsSnapshot snapshot = shard->telemetry().metrics().snapshot();
    const MetricsSnapshot::HistogramSample* own =
        find_histogram(snapshot, "mantra_cycle_duration_seconds");
    ASSERT_NE(own, nullptr);
    ASSERT_EQ(own->bounds, duration->bounds);
    ASSERT_EQ(own->buckets.size(), buckets.size());
    for (std::size_t j = 0; j < buckets.size(); ++j) {
      buckets[j] += own->buckets[j];
    }
    observations += own->count;
  }
  EXPECT_GT(observations, 0u);
  EXPECT_EQ(duration->count, observations);
  EXPECT_EQ(duration->buckets, buckets);

  // The rendered exposition passes the conformance checker and carries the
  // shard label verbatim.
  const std::string exposition = federated_prometheus_text(fleet);
  EXPECT_TRUE(prometheus_lint(exposition).empty());
  EXPECT_NE(exposition.find("mantra_targets{shard=\"shard-01\"} 1\n"),
            std::string::npos);
}

TEST_F(FleetFixture, FederationIgnoresRegistrationOrder) {
  auto shards = make_fleet({}, 0, /*telemetry=*/true);
  run_hours(4);

  FleetAggregator forward, scrambled;
  for (std::size_t i = 0; i < kShards; ++i) {
    forward.add_shard(shard_name(i), *shards[i]);
  }
  for (const std::size_t i : {std::size_t{3}, std::size_t{1}, std::size_t{0},
                              std::size_t{2}}) {
    scrambled.add_shard(shard_name(i), *shards[i]);
  }
  EXPECT_EQ(federated_prometheus_text(forward),
            federated_prometheus_text(scrambled));
  EXPECT_EQ(federated_events_logfmt(forward),
            federated_events_logfmt(scrambled));
}

TEST_F(FleetFixture, FederatedEventsMergeInTimestampShardOrder) {
  auto shards = make_fleet({}, 0, /*telemetry=*/true);
  run_hours(6);

  FleetAggregator fleet;
  for (std::size_t i = 0; i < kShards; ++i) {
    fleet.add_shard(shard_name(i), *shards[i]);
  }
  const std::string merged = federated_events_logfmt(fleet);
  ASSERT_FALSE(merged.empty());

  std::size_t buffered = 0;
  for (const auto& shard : shards) {
    buffered += shard->telemetry().events().size();
  }

  std::vector<std::string> lines;
  std::size_t start = 0;
  for (std::size_t i = 0; i < merged.size(); ++i) {
    if (merged[i] == '\n') {
      lines.push_back(merged.substr(start, i - start));
      start = i + 1;
    }
  }
  EXPECT_EQ(lines.size(), buffered);

  // Every line is `sim_ts=<ms> shard=<name> ...` and the (sim_ts, shard)
  // pairs are nondecreasing — the merge is a total order, not per-shard
  // concatenation.
  std::pair<std::int64_t, std::string> prev{
      std::numeric_limits<std::int64_t>::min(), ""};
  for (const std::string& line : lines) {
    ASSERT_EQ(line.rfind("sim_ts=", 0), 0u) << line;
    const std::size_t ts_end = line.find(' ');
    ASSERT_NE(ts_end, std::string::npos) << line;
    const std::int64_t ts = std::stoll(line.substr(7, ts_end - 7));
    ASSERT_EQ(line.compare(ts_end + 1, 6, "shard="), 0) << line;
    const std::size_t shard_end = line.find(' ', ts_end + 1);
    ASSERT_NE(shard_end, std::string::npos) << line;
    std::pair<std::int64_t, std::string> key{
        ts, line.substr(ts_end + 7, shard_end - ts_end - 7)};
    EXPECT_LE(prev, key) << line;
    prev = std::move(key);
  }
}

}  // namespace
}  // namespace mantra::core
