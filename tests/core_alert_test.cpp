// core/alert: rule validation, the pending -> firing -> resolved lifecycle
// with for-durations and hysteresis (flapping fires once, clears once, and
// never storms the event log), replay equivalence via evaluate_history, and
// the tentpole invariant that alert evaluation is result-neutral — results,
// CSVs, archives and MonitorStatus are identical with alerting on or off.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/alert.hpp"
#include "core/mantra.hpp"
#include "core/provenance.hpp"
#include "core/query.hpp"
#include "core/report.hpp"
#include "core/telemetry.hpp"
#include "core/teltrace.hpp"
#include "workload/scenario.hpp"

namespace mantra::core {
namespace {

/// A synthetic recorded cycle `minutes` into the run with a chosen sample
/// value planted in dvmrp_valid_routes (the field the test rules extract).
CycleResult cycle_at(int minutes, double value) {
  CycleResult result;
  result.t = sim::TimePoint::start() + sim::Duration::minutes(minutes);
  result.dvmrp_valid_routes = static_cast<std::size_t>(value);
  return result;
}

/// A last-value threshold rule over dvmrp_valid_routes: fire >= 10, clear
/// < 5, with configurable durations.
AlertRule routes_rule(std::size_t for_cycles, std::size_t clear_for_cycles) {
  AlertRule rule;
  rule.name = "routes_high";
  rule.kind = AlertRule::Kind::threshold;
  rule.extract = [](const CycleResult& r) {
    return static_cast<double>(r.dvmrp_valid_routes);
  };
  rule.fire_threshold = 10.0;
  rule.clear_threshold = 5.0;
  rule.for_cycles = for_cycles;
  rule.clear_for_cycles = clear_for_cycles;
  return rule;
}

// --- validation --------------------------------------------------------------

TEST(AlertRule, ValidateNamesTheOffendingField) {
  EXPECT_THROW(AlertRule{}.validate(), std::invalid_argument);  // empty name

  AlertRule no_extract = routes_rule(1, 1);
  no_extract.extract = nullptr;
  EXPECT_THROW(no_extract.validate(), std::invalid_argument);

  // Spike rules read the detector verdict; no extract needed.
  AlertRule spike;
  spike.name = "s";
  spike.kind = AlertRule::Kind::spike;
  spike.fire_threshold = spike.clear_threshold = 1.0;
  EXPECT_NO_THROW(spike.validate());

  AlertRule bad_q = routes_rule(1, 1);
  bad_q.quantile_q = 1.5;
  EXPECT_THROW(bad_q.validate(), std::invalid_argument);

  // Inverted hysteresis would let an alert clear and re-arm on one value.
  AlertRule inverted = routes_rule(1, 1);
  inverted.clear_threshold = 20.0;
  EXPECT_THROW(inverted.validate(), std::invalid_argument);

  for (const AlertRule& rule : default_alert_rules()) {
    EXPECT_NO_THROW(rule.validate()) << rule.name;
  }
}

// --- for-duration ------------------------------------------------------------

TEST(AlertEngine, ForDurationHoldsPendingBeforeFiring) {
  AlertEngine engine({routes_rule(/*for_cycles=*/3, /*clear_for_cycles=*/1)});

  engine.observe("fixw", cycle_at(0, 12.0));
  engine.observe("fixw", cycle_at(15, 12.0));
  ASSERT_EQ(engine.active().size(), 1u);
  EXPECT_EQ(engine.active()[0].state, AlertState::pending);
  EXPECT_TRUE(engine.history().empty());
  EXPECT_EQ(engine.firing_count(), 0u);

  engine.observe("fixw", cycle_at(30, 12.0));  // third consecutive cycle
  ASSERT_EQ(engine.history().size(), 1u);
  const AlertRecord& record = engine.history()[0];
  EXPECT_EQ(record.rule, "routes_high");
  EXPECT_EQ(record.target, "fixw");
  // pending_at is when the condition first held; fired_at when the
  // for-duration was met.
  EXPECT_EQ(record.pending_at, sim::TimePoint::start());
  EXPECT_EQ(record.fired_at, sim::TimePoint::start() + sim::Duration::minutes(30));
  EXPECT_FALSE(record.resolved_at.has_value());
  EXPECT_EQ(engine.firing_count(), 1u);
}

TEST(AlertEngine, ConditionLapseDuringPendingLeavesNoEpisode) {
  AlertEngine engine({routes_rule(/*for_cycles=*/3, /*clear_for_cycles=*/1)});
  engine.observe("fixw", cycle_at(0, 12.0));
  engine.observe("fixw", cycle_at(15, 12.0));
  engine.observe("fixw", cycle_at(30, 2.0));  // lapses before the duration
  EXPECT_TRUE(engine.history().empty());
  EXPECT_TRUE(engine.active().empty());

  // The hold counter restarts from scratch on the next excursion.
  engine.observe("fixw", cycle_at(45, 12.0));
  engine.observe("fixw", cycle_at(60, 12.0));
  EXPECT_TRUE(engine.history().empty());
  engine.observe("fixw", cycle_at(75, 12.0));
  EXPECT_EQ(engine.history().size(), 1u);
}

// --- hysteresis / flap resistance --------------------------------------------

TEST(AlertEngine, FlappingBetweenThresholdsFiresOnceAndClearsOnce) {
  // fire >= 10, clear < 5: values oscillating in the hysteresis band [5, 10)
  // keep one episode alive instead of storming.
  Telemetry telemetry(TelemetryConfig{.enabled = true});
  AlertEngine engine({routes_rule(/*for_cycles=*/1, /*clear_for_cycles=*/2)});
  engine.set_telemetry(&telemetry);

  int minutes = 0;
  engine.observe("fixw", cycle_at(minutes += 15, 12.0));  // fires
  for (int i = 0; i < 6; ++i) {
    // Flap between "still over" and "inside the band": never clears.
    engine.observe("fixw", cycle_at(minutes += 15, i % 2 == 0 ? 6.0 : 12.0));
  }
  ASSERT_EQ(engine.history().size(), 1u);
  EXPECT_EQ(engine.firing_count(), 1u);
  EXPECT_FALSE(engine.history()[0].resolved_at.has_value());

  // One cycle below the clear threshold is not enough (clear_for_cycles=2)
  // — and a bounce back over the band resets the clear hold.
  engine.observe("fixw", cycle_at(minutes += 15, 2.0));
  engine.observe("fixw", cycle_at(minutes += 15, 7.0));
  engine.observe("fixw", cycle_at(minutes += 15, 2.0));
  EXPECT_EQ(engine.firing_count(), 1u);
  engine.observe("fixw", cycle_at(minutes += 15, 2.0));  // second in a row
  EXPECT_EQ(engine.firing_count(), 0u);
  ASSERT_EQ(engine.history().size(), 1u);
  EXPECT_TRUE(engine.history()[0].resolved_at.has_value());
  EXPECT_GT(engine.history()[0].peak_value, 10.0);

  // The event log saw exactly one firing and one resolution — no storm.
  const std::string events = telemetry.events().logfmt();
  std::size_t firing = 0, resolved = 0, pos = 0;
  while ((pos = events.find("event=alert_firing", pos)) != std::string::npos) {
    ++firing;
    ++pos;
  }
  pos = 0;
  while ((pos = events.find("event=alert_resolved", pos)) != std::string::npos) {
    ++resolved;
    ++pos;
  }
  EXPECT_EQ(firing, 1u);
  EXPECT_EQ(resolved, 1u);
  // The exported gauge ended on 0 (inactive), enum-ordered states.
  EXPECT_DOUBLE_EQ(telemetry.metrics()
                       .gauge("mantra_alert_state",
                              {{"rule", "routes_high"}, {"target", "fixw"}})
                       .value(),
                   0.0);
}

// --- rule kinds --------------------------------------------------------------

TEST(AlertEngine, RateOfChangeReadsZeroUntilWindowFull) {
  AlertRule rule = routes_rule(1, 1);
  rule.name = "flux";
  rule.kind = AlertRule::Kind::rate_of_change;
  rule.window = 2;
  rule.fire_threshold = 100.0;
  rule.clear_threshold = 50.0;
  AlertEngine engine({rule});

  engine.observe("fixw", cycle_at(0, 1000.0));
  engine.observe("fixw", cycle_at(15, 2000.0));  // window not yet full
  EXPECT_TRUE(engine.active().empty());
  engine.observe("fixw", cycle_at(30, 1150.0));  // x[n] - x[n-2] = 150 >= 100
  EXPECT_EQ(engine.firing_count(), 1u);
  ASSERT_EQ(engine.status().size(), 1u);
  EXPECT_DOUBLE_EQ(engine.status()[0].value, 150.0);
}

TEST(AlertEngine, SpikeRuleEscalatesOnlyConsecutiveSpikes) {
  AlertRule rule;
  rule.name = "spike";
  rule.kind = AlertRule::Kind::spike;
  rule.fire_threshold = 1.0;
  rule.clear_threshold = 1.0;
  rule.for_cycles = 2;
  rule.clear_for_cycles = 1;
  AlertEngine engine({rule});

  CycleResult spiking = cycle_at(0, 0.0);
  spiking.route_spike = true;
  spiking.route_spike_score = 14.0;

  // A one-off blip goes pending, then lapses: no alert.
  engine.observe("ucsb-gw", spiking);
  engine.observe("ucsb-gw", cycle_at(15, 0.0));
  EXPECT_TRUE(engine.history().empty());

  // Two consecutive spike cycles escalate.
  spiking.t = sim::TimePoint::start() + sim::Duration::minutes(30);
  engine.observe("ucsb-gw", spiking);
  spiking.t = sim::TimePoint::start() + sim::Duration::minutes(45);
  spiking.route_spike_score = 20.0;
  engine.observe("ucsb-gw", spiking);
  ASSERT_EQ(engine.history().size(), 1u);
  EXPECT_DOUBLE_EQ(engine.history()[0].peak_value, 20.0);
}

// --- replay equivalence ------------------------------------------------------

TEST(AlertEngine, EvaluateHistoryReproducesLiveObservationOrder) {
  // Two interleaved targets: live evaluation goes cycle by cycle, name
  // order within a cycle. evaluate_history must rebuild the same history
  // from the per-target streams.
  const auto make_engine = [] {
    return AlertEngine({routes_rule(/*for_cycles=*/2, /*clear_for_cycles=*/1)});
  };
  std::vector<CycleResult> alpha, beta;
  for (int c = 0; c < 8; ++c) {
    alpha.push_back(cycle_at(c * 15, c >= 2 ? 12.0 : 0.0));
    beta.push_back(cycle_at(c * 15, c >= 5 ? 12.0 : 0.0));
  }

  AlertEngine live = make_engine();
  for (int c = 0; c < 8; ++c) {  // the monitor's order: per cycle, by name
    live.observe("alpha", alpha[static_cast<std::size_t>(c)]);
    live.observe("beta", beta[static_cast<std::size_t>(c)]);
  }

  AlertEngine replayed = make_engine();
  evaluate_history(replayed, {{"beta", &beta}, {"alpha", &alpha}});

  ASSERT_EQ(live.history().size(), 2u);
  EXPECT_EQ(live.history(), replayed.history());
  EXPECT_EQ(live.status_table().render(), replayed.status_table().render());
  EXPECT_EQ(live.history_table().render(), replayed.history_table().render());
}

// --- result neutrality -------------------------------------------------------

std::string read_file_bytes(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(AlertNeutrality, ResultsArchivesAndStatusIdenticalOnOrOff) {
  const std::filesystem::path base =
      std::filesystem::path(::testing::TempDir()) / "mantra_alert_neutral";
  std::filesystem::remove_all(base);

  const auto run = [&](bool alerts_on) {
    workload::ScenarioConfig config;
    config.seed = 33;
    config.domains = 4;
    config.hosts_per_domain = 6;
    config.dvmrp_prefixes_per_domain = 6;
    config.report_loss = 0.05;
    config.timer_scale = 1;
    config.full_timers = true;
    config.generator.session_arrivals_per_hour = 40.0;
    config.generator.bursts_per_day = 0.0;
    workload::FixwScenario scenario(config);
    scenario.start();

    MantraConfig monitor_config;
    monitor_config.cycle = sim::Duration::minutes(15);
    monitor_config.retry.max_attempts = 2;
    monitor_config.archive_dir =
        (base / (alerts_on ? "on" : "off")).string();
    monitor_config.alerts.enabled = alerts_on;
    auto monitor = std::make_unique<Mantra>(
        scenario.engine(), monitor_config,
        [](const std::string& name) -> std::unique_ptr<Transport> {
          FaultProfile profile;
          if (name == "ucsb-gw") {
            profile = FaultProfile::command_failure_rate(0.3);
          }
          return std::make_unique<FaultInjectingTransport>(
              per_target_seed(0xa1e27, name), profile);
        });
    monitor->add_target(scenario.network().router(scenario.fixw_node()));
    monitor->add_target(scenario.network().router(scenario.ucsb_node()));
    monitor->start();
    scenario.engine().run_until(scenario.engine().now() +
                                sim::Duration::hours(6));

    struct Outcome {
      std::vector<std::vector<CycleResult>> results;
      std::string status;
      std::string overview_csv;
      std::size_t alerts_evaluated;
    } outcome;
    for (const std::string& name : monitor->target_names()) {
      outcome.results.push_back(monitor->target_view(name).results());
    }
    outcome.status = monitor->status().to_table().render();
    outcome.overview_csv = monitor->overview().to_csv();
    outcome.alerts_evaluated = monitor->alerts().status().size();
    return outcome;
  };

  const auto with = run(true);
  const auto without = run(false);

  // The engine evaluated rules only when enabled...
  EXPECT_GT(with.alerts_evaluated, 0u);
  EXPECT_EQ(without.alerts_evaluated, 0u);
  // ...and nothing it computed leaked into the monitoring outcome.
  EXPECT_EQ(with.results, without.results);
  EXPECT_EQ(with.status, without.status);
  EXPECT_EQ(with.overview_csv, without.overview_csv);

  // Archive bytes, after the writers flush.
  for (const char* name : {"fixw", "ucsb-gw"}) {
    const std::string on_bytes =
        read_file_bytes(base / "on" / (std::string(name) + ".marc"));
    const std::string off_bytes =
        read_file_bytes(base / "off" / (std::string(name) + ".marc"));
    ASSERT_FALSE(on_bytes.empty());
    EXPECT_EQ(on_bytes, off_bytes) << name;
  }
}

// --- provenance capture ------------------------------------------------------

TEST(Provenance, CapturesWindowFactsAndMathAtFire) {
  AlertEngine engine({routes_rule(/*for_cycles=*/2, /*clear_for_cycles=*/1)});

  CycleResult first = cycle_at(0, 12.0);
  first.cycle_seq = 7;
  first.stale = true;
  first.stale_tables = 2;
  first.collection_failures = 1;
  first.capture_attempts = 3;
  first.collection_latency = sim::Duration::seconds(40);
  CycleResult second = cycle_at(15, 14.0);
  second.cycle_seq = 8;

  engine.observe("fixw", first);
  EXPECT_TRUE(engine.provenance().empty());  // pending is not an episode
  engine.observe("fixw", second);

  ASSERT_EQ(engine.provenance().size(), 1u);
  const ProvenanceRecord& why = engine.provenance()[0];
  EXPECT_EQ(why.rule, "routes_high");
  EXPECT_EQ(why.target, "fixw");
  EXPECT_EQ(why.corr, correlation_id(8, "fixw"));
  EXPECT_EQ(why.corr, "c8/fixw");
  EXPECT_EQ(why.severity, "warning");
  EXPECT_EQ(why.kind, "threshold");
  EXPECT_EQ(why.aggregate, "last");
  EXPECT_EQ(why.fire_cycle_seq, 8u);
  EXPECT_DOUBLE_EQ(why.value_at_fire, 14.0);
  EXPECT_EQ(why.pending_at, sim::TimePoint::start());
  EXPECT_EQ(why.fired_at, sim::TimePoint::start() + sim::Duration::minutes(15));
  EXPECT_EQ(why.math, "last(w=1) = 14 >= 10 held 2/2 cycles; clears < 5 for 1");
  // The trail holds the aggregation window plus the pending hold, with the
  // archived collection facts of every contributing cycle.
  ASSERT_EQ(why.points.size(), 2u);
  EXPECT_EQ(why.points[0].cycle_seq, 7u);
  EXPECT_DOUBLE_EQ(why.points[0].raw, 12.0);
  EXPECT_TRUE(why.points[0].over);
  EXPECT_TRUE(why.points[0].facts.stale);
  EXPECT_EQ(why.points[0].facts.stale_tables, 2u);
  EXPECT_EQ(why.points[0].facts.collection_failures, 1u);
  EXPECT_EQ(why.points[0].facts.capture_attempts, 3u);
  EXPECT_EQ(why.points[0].facts.collection_latency, sim::Duration::seconds(40));
  EXPECT_DOUBLE_EQ(why.points[1].value, 14.0);
  EXPECT_TRUE(why.events.empty());  // tails attach separately

  // The history record carries the same joining correlation id.
  ASSERT_EQ(engine.history().size(), 1u);
  EXPECT_EQ(engine.history()[0].corr, "c8/fixw");
}

TEST(Provenance, ValueOnlyObservationsLeaveCorrEmpty) {
  // Self-monitoring rules feed observe_values without collection facts:
  // no monitor cycle of their own, so no correlation id and cycle_seq 0.
  AlertRule rule = routes_rule(1, 1);
  AlertEngine engine({rule});
  engine.observe_values("monitor", sim::TimePoint::from_ms(60'000), {12.0});
  ASSERT_EQ(engine.provenance().size(), 1u);
  EXPECT_TRUE(engine.provenance()[0].corr.empty());
  EXPECT_EQ(engine.provenance()[0].fire_cycle_seq, 0u);
  ASSERT_EQ(engine.history().size(), 1u);
  EXPECT_TRUE(engine.history()[0].corr.empty());
}

TEST(Provenance, CaptureIsEvaluationNeutral) {
  const auto run = [](bool provenance_on) {
    AlertEngine engine({routes_rule(/*for_cycles=*/2, /*clear_for_cycles=*/2)});
    engine.set_provenance(provenance_on);
    int minutes = 0;
    for (const double value : {12.0, 14.0, 6.0, 2.0, 2.0, 12.0, 12.0}) {
      engine.observe("fixw", cycle_at(minutes += 15, value));
    }
    return engine;
  };
  const AlertEngine with = run(true);
  const AlertEngine without = run(false);
  EXPECT_EQ(with.history(), without.history());
  EXPECT_EQ(with.status_table().render(), without.status_table().render());
  EXPECT_FALSE(with.provenance().empty());
  EXPECT_TRUE(without.provenance().empty());
}

TEST(Provenance, AttachEventsFiltersByTargetAndWindowAndCapsTail) {
  AlertEngine engine({routes_rule(/*for_cycles=*/2, /*clear_for_cycles=*/1)});
  CycleResult first = cycle_at(15, 12.0);
  first.cycle_seq = 2;
  CycleResult second = cycle_at(30, 12.0);
  second.cycle_seq = 3;
  engine.observe("fixw", first);
  engine.observe("fixw", second);
  std::vector<ProvenanceRecord> records = engine.provenance();
  ASSERT_EQ(records.size(), 1u);

  std::vector<TelemetryEvent> events;
  const auto event_at = [](std::int64_t ms, const char* target,
                           std::uint64_t seq) {
    TelemetryEvent event;
    event.level = EventLevel::warn;
    event.name = "capture_failed";
    event.sim_ts_ms = ms;
    event.seq = seq;
    event.fields = {{"target", target}};
    return event;
  };
  events.push_back(event_at(14 * 60'000, "fixw", 1));   // before the window
  events.push_back(event_at(31 * 60'000, "fixw", 2));   // after fired_at
  events.push_back(event_at(20 * 60'000, "ucsb-gw", 3));  // other target
  for (std::uint64_t i = 0; i < kMaxProvenanceEvents + 4; ++i) {
    events.push_back(event_at(20 * 60'000, "fixw", 100 + i));
  }
  attach_provenance_events(records, events);
  ASSERT_EQ(records[0].events.size(), kMaxProvenanceEvents);  // newest kept
  EXPECT_EQ(records[0].events.front().seq, 104u);
  EXPECT_EQ(records[0].events.back().seq,
            100u + kMaxProvenanceEvents + 3);
  for (const TelemetryEvent& event : records[0].events) {
    EXPECT_EQ(event.fields[0].second, "fixw");
  }
}

TEST(Provenance, ParseExplainSpecForms) {
  EXPECT_TRUE(parse_explain_spec("").rule.empty());
  EXPECT_TRUE(parse_explain_spec("").target.empty());
  EXPECT_EQ(parse_explain_spec("stale_fraction").rule, "stale_fraction");
  EXPECT_TRUE(parse_explain_spec("stale_fraction").target.empty());
  const ExplainFilter both = parse_explain_spec("stale_fraction:ucsb-gw");
  EXPECT_EQ(both.rule, "stale_fraction");
  EXPECT_EQ(both.target, "ucsb-gw");
  EXPECT_TRUE(parse_explain_spec(":").rule.empty());
  EXPECT_TRUE(parse_explain_spec(":").target.empty());

  ProvenanceRecord record;
  record.rule = "stale_fraction";
  record.target = "ucsb-gw";
  EXPECT_TRUE(ExplainFilter{}.matches(record));
  EXPECT_TRUE(both.matches(record));
  EXPECT_FALSE(parse_explain_spec("other").matches(record));
  EXPECT_FALSE(parse_explain_spec("stale_fraction:fixw").matches(record));
}

TEST(Provenance, RenderExplanationsMatchesGolden) {
  ProvenanceRecord record;
  record.corr = "c8/fixw";
  record.rule = "routes_high";
  record.target = "fixw";
  record.severity = "warning";
  record.kind = "threshold";
  record.aggregate = "last";
  record.fire_threshold = 10.0;
  record.clear_threshold = 5.0;
  record.value_at_fire = 14.0;
  record.fire_cycle_seq = 8;
  record.pending_at = sim::TimePoint::start();
  record.fired_at = sim::TimePoint::start() + sim::Duration::minutes(15);
  record.math = "last(w=1) = 14 >= 10 held 2/2 cycles; clears < 5 for 1";
  ProvenanceWindowPoint point;
  point.cycle_seq = 8;
  point.t = record.fired_at;
  point.raw = 14.0;
  point.value = 14.0;
  point.over = true;
  point.facts.stale = true;
  point.facts.stale_tables = 1;
  point.facts.capture_attempts = 2;
  point.facts.collection_latency = sim::Duration::seconds(40);
  record.points.push_back(point);
  TelemetryEvent event;
  event.level = EventLevel::warn;
  event.name = "capture_failed";
  event.sim_ts_ms = point.t.total_ms();
  event.fields = {{"target", "fixw"}, {"detail", "timed out"}};
  record.events.push_back(event);

  const std::string text = render_explanations({record}, ExplainFilter{});
  EXPECT_EQ(text,
            "alert routes_high:fixw severity=warning corr=c8/fixw\n"
            "  pending_at=" + record.pending_at.to_string() +
            " fired_at=" + record.fired_at.to_string() +
            " fire_cycle=8 value=14\n"
            "  math: last(w=1) = 14 >= 10 held 2/2 cycles; clears < 5 for 1\n"
            "  window:\n"
            "    seq=8 t=" + point.t.to_string() +
            " raw=14 value=14 over=1 stale=1 stale_tables=1 fails=0 streak=0"
            " attempts=2 latency_ms=40000\n"
            "  events:\n"
            "    sim_ts=900000 level=warn event=capture_failed target=fixw"
            " detail=\"timed out\"\n"
            "1 alert(s) explained\n");

  // A non-matching filter explains nothing; the shard tag prefixes the id.
  EXPECT_EQ(render_explanations({record}, parse_explain_spec("other")),
            "0 alert(s) explained\n");
  const std::vector<std::string> shards = {"shard-00"};
  EXPECT_NE(render_explanations({record}, ExplainFilter{}, &shards)
                .find("alert routes_high:fixw shard=shard-00 "),
            std::string::npos);
}

// --- provenance determinism: live vs archive replay --------------------------

TEST(Provenance, LiveAndArchiveReplayExplanationsAreByteIdentical) {
  const std::filesystem::path base =
      std::filesystem::path(::testing::TempDir()) / "mantra_provenance_replay";
  std::filesystem::remove_all(base);

  workload::ScenarioConfig config;
  config.seed = 33;
  config.domains = 4;
  config.hosts_per_domain = 6;
  config.dvmrp_prefixes_per_domain = 6;
  config.report_loss = 0.05;
  config.timer_scale = 1;
  config.full_timers = true;
  config.generator.session_arrivals_per_hour = 40.0;
  config.generator.bursts_per_day = 0.0;
  workload::FixwScenario scenario(config);
  scenario.start();

  MantraConfig monitor_config;
  monitor_config.cycle = sim::Duration::minutes(15);
  monitor_config.retry.max_attempts = 2;
  monitor_config.worker_threads = 4;
  monitor_config.archive_dir = base.string();
  monitor_config.alerts.enabled = true;
  monitor_config.telemetry.enabled = true;
  monitor_config.self.enabled = true;
  monitor_config.self.path = (base / "monitor.mtel").string();
  auto monitor = std::make_unique<Mantra>(
      scenario.engine(), monitor_config,
      [](const std::string& name) -> std::unique_ptr<Transport> {
        FaultProfile profile;
        if (name == "ucsb-gw") {
          profile = FaultProfile::command_failure_rate(0.3);
        }
        return std::make_unique<FaultInjectingTransport>(
            per_target_seed(0xa1e27, name), profile);
      });
  monitor->add_target(scenario.network().router(scenario.fixw_node()));
  monitor->add_target(scenario.network().router(scenario.ucsb_node()));
  monitor->start();
  scenario.engine().run_until(scenario.engine().now() + sim::Duration::hours(6));

  const ReportData live = report_data_from(*monitor);
  ASSERT_FALSE(live.provenance.empty());
  // Every explanation joins its alert-history row via the correlation id.
  ASSERT_EQ(live.provenance.size(), live.alerts.size());
  for (std::size_t i = 0; i < live.alerts.size(); ++i) {
    EXPECT_FALSE(live.alerts[i].corr.empty());
    EXPECT_EQ(live.provenance[i].corr, live.alerts[i].corr);
  }
  // The faulty target's tails picked up correlated collection events.
  bool any_tail = false;
  for (const ProvenanceRecord& record : live.provenance) {
    if (!record.events.empty()) any_tail = true;
  }
  EXPECT_TRUE(any_tail);
  const std::string live_text =
      render_explanations(live.provenance, ExplainFilter{});

  // Tear the monitor down (flushing .marc and .mtel) and rebuild everything
  // from the recorded bytes alone.
  const std::vector<std::string> names = monitor->target_names();
  monitor->self_monitor()->close();
  monitor.reset();

  QueryEngine engine;
  std::vector<ReportTargetData> targets;
  for (const std::string& name : names) {
    engine.add_archive(name, (base / (name + ".marc")).string());
    targets.push_back({name, engine.replay(name).results});
  }
  // Cycle sequence numbers survive the archive round-trip (dark-cycle gaps
  // included) — the correlation ids depend on it.
  for (std::size_t i = 0; i < names.size(); ++i) {
    EXPECT_EQ(targets[i].results, live.targets[i].results) << names[i];
    for (const CycleResult& result : targets[i].results) {
      EXPECT_GT(result.cycle_seq, 0u);
    }
  }
  TelemetryArchiveReader reader((base / "monitor.mtel").string());
  const ReportData replayed = report_data_from_replay(
      std::move(targets), default_alert_rules(), &reader.samples());

  EXPECT_EQ(live.provenance, replayed.provenance);
  EXPECT_EQ(live_text,
            render_explanations(replayed.provenance, ExplainFilter{}));
  std::filesystem::remove_all(base);
}

}  // namespace
}  // namespace mantra::core
