#include <gtest/gtest.h>

#include "core/tables.hpp"

namespace mantra::core {
namespace {

PairRow pair(const char* source, const char* group, double kbps) {
  PairRow row;
  row.source = *net::Ipv4Address::parse(source);
  row.group = *net::Ipv4Address::parse(group);
  row.current_kbps = kbps;
  return row;
}

TEST(Table, UpsertFindErase) {
  PairTable table;
  table.upsert(pair("10.0.0.1", "224.1.1.1", 5.0));
  EXPECT_EQ(table.size(), 1u);
  const PairRow* row = table.find({*net::Ipv4Address::parse("10.0.0.1"),
                                   *net::Ipv4Address::parse("224.1.1.1")});
  ASSERT_NE(row, nullptr);
  EXPECT_DOUBLE_EQ(row->current_kbps, 5.0);
  table.upsert(pair("10.0.0.1", "224.1.1.1", 7.0));  // replace
  EXPECT_EQ(table.size(), 1u);
  EXPECT_TRUE(table.erase(row->key()));
  EXPECT_TRUE(table.empty());
}

TEST(Table, DiffDetectsUpsertsAndRemovals) {
  PairTable before, after;
  before.upsert(pair("10.0.0.1", "224.1.1.1", 5.0));
  before.upsert(pair("10.0.0.2", "224.1.1.1", 3.0));
  after.upsert(pair("10.0.0.1", "224.1.1.1", 9.0));  // changed rate
  after.upsert(pair("10.0.0.3", "224.1.1.1", 1.0));  // new

  const auto delta = PairTable::diff(before, after);
  EXPECT_EQ(delta.upserts.size(), 2u);
  EXPECT_EQ(delta.removals.size(), 1u);
  EXPECT_EQ(delta.change_count(), 3u);

  PairTable replayed = before;
  replayed.apply(delta);
  EXPECT_EQ(replayed, after);
}

TEST(Table, DiffIgnoresDerivedFieldChanges) {
  PairTable before, after;
  PairRow row = pair("10.0.0.1", "224.1.1.1", 5.0);
  before.upsert(row);
  row.uptime = sim::Duration::minutes(15);  // derived field advanced
  row.packets = 999;
  after.upsert(row);
  EXPECT_TRUE(PairTable::diff(before, after).empty());
}

TEST(Table, AdvanceDerivedRollsPairForward) {
  PairTable table;
  PairRow row = pair("10.0.0.1", "224.1.1.1", 8.0);  // 1 KB/s
  row.uptime = sim::Duration::seconds(100);
  row.average_kbps = 8.0;
  table.upsert(row);
  table.advance_derived(sim::Duration::seconds(100));
  const PairRow* advanced = table.find(row.key());
  EXPECT_EQ(advanced->uptime, sim::Duration::seconds(200));
  EXPECT_NEAR(advanced->average_kbps, 8.0, 1e-9);
  EXPECT_NEAR(static_cast<double>(advanced->packets), 100'000.0 / 512.0, 1.0);
}

TEST(Table, RouteDeltaEqualComparesStableFieldsOnly) {
  RouteRow a;
  a.prefix = *net::Prefix::parse("10.1.0.0/16");
  a.next_hop = *net::Ipv4Address::parse("192.168.0.2");
  a.metric = 3;
  RouteRow b = a;
  b.uptime = sim::Duration::hours(5);
  EXPECT_TRUE(RouteRow::delta_equal(a, b));
  b.holddown = true;
  EXPECT_FALSE(RouteRow::delta_equal(a, b));
}

TEST(DeriveParticipants, AggregatesPerHost) {
  PairTable pairs;
  pairs.upsert(pair("10.0.0.1", "224.1.1.1", 100.0));  // sender
  pairs.upsert(pair("10.0.0.1", "224.1.1.2", 1.0));
  pairs.upsert(pair("10.0.0.2", "224.1.1.1", 2.0));    // passive

  const ParticipantTable participants = derive_participants(pairs);
  EXPECT_EQ(participants.size(), 2u);
  const ParticipantRow* host1 = participants.find(*net::Ipv4Address::parse("10.0.0.1"));
  ASSERT_NE(host1, nullptr);
  EXPECT_EQ(host1->group_count, 2);
  EXPECT_DOUBLE_EQ(host1->total_kbps, 101.0);
  EXPECT_TRUE(host1->sender);
  const ParticipantRow* host2 = participants.find(*net::Ipv4Address::parse("10.0.0.2"));
  ASSERT_NE(host2, nullptr);
  EXPECT_FALSE(host2->sender);
}

TEST(DeriveSessions, ClassifiesActiveByThreshold) {
  PairTable pairs;
  pairs.upsert(pair("10.0.0.1", "224.1.1.1", 100.0));
  pairs.upsert(pair("10.0.0.2", "224.1.1.1", 2.0));
  pairs.upsert(pair("10.0.0.3", "224.1.1.2", 3.5));  // all-passive session

  const SessionTable sessions = derive_sessions(pairs);
  EXPECT_EQ(sessions.size(), 2u);
  const SessionRow* active = sessions.find(*net::Ipv4Address::parse("224.1.1.1"));
  ASSERT_NE(active, nullptr);
  EXPECT_EQ(active->density, 2);
  EXPECT_EQ(active->senders, 1);
  EXPECT_TRUE(active->active);
  const SessionRow* inactive = sessions.find(*net::Ipv4Address::parse("224.1.1.2"));
  ASSERT_NE(inactive, nullptr);
  EXPECT_FALSE(inactive->active);
  EXPECT_EQ(inactive->density, 1);
}

TEST(DeriveSessions, ThresholdIsExclusive) {
  // Exactly 4.0 kbps is *not* a sender ("greater than the threshold").
  PairTable pairs;
  pairs.upsert(pair("10.0.0.1", "224.1.1.1", 4.0));
  const SessionTable sessions = derive_sessions(pairs, 4.0);
  EXPECT_FALSE(sessions.rows()[0].active);
  const ParticipantTable participants = derive_participants(pairs, 4.0);
  EXPECT_FALSE(participants.rows()[0].sender);
}

TEST(DeriveTables, EmptyPairTableYieldsEmptyDerived) {
  PairTable pairs;
  EXPECT_TRUE(derive_participants(pairs).empty());
  EXPECT_TRUE(derive_sessions(pairs).empty());
}

}  // namespace
}  // namespace mantra::core
