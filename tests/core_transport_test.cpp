// Fault-tolerant collection transport: retry/backoff, per-command capture
// statuses, and deterministic fault injection.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/collect.hpp"
#include "core/transport.hpp"
#include "router/cli.hpp"
#include "router/network.hpp"

namespace mantra::core {
namespace {

class TransportTest : public ::testing::Test {
 protected:
  TransportTest() : rng_(7), network_(engine_, topo_, rng_, router::NetworkConfig{}) {
    r1_ = topo_.add_router("r1");
    r2_ = topo_.add_router("r2");
    topo_.connect(r1_, r2_, *net::Prefix::parse("192.168.0.0/30"));
    const auto lan = topo_.create_lan(*net::Prefix::parse("10.1.1.0/24"));
    topo_.attach_to_lan(r1_, lan);

    router::RouterConfig config;
    config.dvmrp_enabled = true;
    config.dvmrp.timers_enabled = false;
    config.igmp.timers_enabled = false;
    network_.add_router(r1_, config);
    network_.add_router(r2_, config);
    network_.start();
    network_.router(r1_)->dvmrp()->send_reports_now();
    engine_.run_until(engine_.now() + sim::Duration::seconds(2));
  }

  [[nodiscard]] const router::MulticastRouter& r1() const {
    return *network_.router(r1_);
  }

  sim::Engine engine_;
  sim::Rng rng_;
  net::Topology topo_;
  router::Network network_;
  net::NodeId r1_, r2_;
};

TEST_F(TransportTest, CliTransportSessionSucceeds) {
  CliTransport transport;
  const TransportResult login = transport.connect(r1(), engine_.now());
  EXPECT_TRUE(login.ok());
  const TransportResult result =
      transport.execute(r1(), "show ip dvmrp route", engine_.now());
  EXPECT_TRUE(result.ok());
  EXPECT_NE(result.text.find("DVMRP Routing Table"), std::string::npos);
  EXPECT_GT(result.latency.total_ms(), 0);
}

TEST_F(TransportTest, ConnectRefusalFailsEveryCommandAfterRetries) {
  FaultProfile profile;
  profile.connect_refused_p = 1.0;
  RetryPolicy policy;
  policy.max_attempts = 3;
  Collector collector(default_command_set(), policy,
                      std::make_unique<FaultInjectingTransport>(1, profile));

  const CaptureReport report = collector.capture(r1(), engine_.now());
  EXPECT_FALSE(report.connected);
  EXPECT_FALSE(report.all_ok());
  EXPECT_EQ(report.attempts, 3u);  // three connect attempts, no commands
  ASSERT_EQ(report.captures.size(), default_command_set().size());
  EXPECT_EQ(report.failure_count(), report.captures.size());
  for (const RawCapture& capture : report.captures) {
    EXPECT_EQ(capture.status, CaptureStatus::failed);
    EXPECT_EQ(capture.transport_status, TransportStatus::connection_refused);
    EXPECT_EQ(capture.attempts, 0u);
    EXPECT_TRUE(capture.raw_text.empty());
  }
}

TEST_F(TransportTest, InvalidCommandIsNotRetriedAndNotParseable) {
  Collector collector({"show ip bogus nonsense", "show ip dvmrp route"});
  const CaptureReport report = collector.capture(r1(), engine_.now());
  ASSERT_EQ(report.captures.size(), 2u);

  const RawCapture& bogus = report.captures[0];
  EXPECT_EQ(bogus.status, CaptureStatus::invalid_command);
  EXPECT_EQ(bogus.attempts, 1u);  // rejection is definitive; no retry
  EXPECT_TRUE(router::cli::is_invalid_command_output(bogus.raw_text));
  EXPECT_TRUE(bogus.clean_text.empty());  // never offered to the parsers

  const RawCapture& good = report.captures[1];
  EXPECT_EQ(good.status, CaptureStatus::ok);
  EXPECT_EQ(report.failure_count(), 1u);
  EXPECT_FALSE(report.all_ok());
}

TEST_F(TransportTest, TruncationSurfacesPartialDumpAfterRetries) {
  FaultProfile profile;
  profile.truncate_p = 1.0;
  RetryPolicy policy;
  policy.max_attempts = 2;
  Collector collector({"show ip dvmrp route"}, policy,
                      std::make_unique<FaultInjectingTransport>(2, profile));

  const CaptureReport report = collector.capture(r1(), engine_.now());
  EXPECT_TRUE(report.connected);
  ASSERT_EQ(report.captures.size(), 1u);
  const RawCapture& capture = report.captures[0];
  EXPECT_EQ(capture.status, CaptureStatus::truncated);
  EXPECT_EQ(capture.attempts, 2u);

  const std::string full =
      router::cli::telnet_capture(r1(), "show ip dvmrp route", engine_.now());
  EXPECT_LT(capture.raw_text.size(), full.size());
  EXPECT_FALSE(capture.raw_text.empty());
}

TEST_F(TransportTest, SlowResponseExceedsDeadline) {
  FaultProfile profile;
  profile.slow_p = 1.0;
  profile.slow_latency = sim::Duration::seconds(90);
  RetryPolicy policy;
  policy.max_attempts = 2;
  policy.command_deadline = sim::Duration::seconds(30);
  Collector collector({"show ip dvmrp route"}, policy,
                      std::make_unique<FaultInjectingTransport>(3, profile));

  const CaptureReport report = collector.capture(r1(), engine_.now());
  ASSERT_EQ(report.captures.size(), 1u);
  EXPECT_EQ(report.captures[0].status, CaptureStatus::failed);
  EXPECT_EQ(report.captures[0].transport_status,
            TransportStatus::deadline_exceeded);
  EXPECT_EQ(report.captures[0].deadline_phase, DeadlinePhase::in_flight);
  // The first slow response alone spends the whole cumulative deadline, so
  // no retry is attempted.
  EXPECT_EQ(report.captures[0].attempts, 1u);
}

TEST_F(TransportTest, DeadlineBoundsCumulativeLatencyAcrossRetries) {
  // Each attempt fails in 12s against a 30s deadline with a generous
  // attempt budget: retrying must stop once the cumulative spend (attempts
  // + backoff) reaches the deadline, instead of burning max_attempts x.
  FaultProfile profile;
  profile.truncate_p = 1.0;
  profile.base_latency = sim::Duration::seconds(12);
  RetryPolicy policy;
  policy.max_attempts = 5;
  policy.initial_backoff = sim::Duration::seconds(1);
  policy.backoff_multiplier = 2.0;
  policy.jitter = 0.0;
  policy.command_deadline = sim::Duration::seconds(30);
  Collector collector({"show ip dvmrp route"}, policy,
                      std::make_unique<FaultInjectingTransport>(6, profile));

  const CaptureReport report = collector.capture(r1(), engine_.now());
  ASSERT_EQ(report.captures.size(), 1u);
  const RawCapture& capture = report.captures[0];
  // 12s + 1s backoff + 12s = 25s < 30s; the 2s backoff fits (27s) but the
  // third attempt lands at 39s >= 30s, so collection stops there.
  EXPECT_EQ(capture.attempts, 3u);
  EXPECT_EQ(capture.latency.total_ms(), 3 * 12000 + 1000 + 2000);
  // Retry accounting: the report counts every connect and command attempt.
  EXPECT_EQ(report.attempts, 1u + capture.attempts);
  // Overshoot is bounded by one attempt's latency, never by max_attempts x.
  EXPECT_LE(capture.latency,
            policy.command_deadline + profile.base_latency);
  // Exhausting the budget during an attempt is uniformly a failed capture
  // (the last attempt's truncated dump must not read as a usable-if-stale
  // partial capture), with the phase recording where the budget went.
  EXPECT_EQ(capture.status, CaptureStatus::failed);
  EXPECT_EQ(capture.deadline_phase, DeadlinePhase::in_flight);
  EXPECT_EQ(capture.transport_status, TransportStatus::truncated);
  EXPECT_TRUE(capture.clean_text.empty());
}

TEST_F(TransportTest, DeadlineExhaustedDuringBackoffIsFailed) {
  // One 10s truncated attempt leaves 20s of budget; the configured 25s
  // backoff cannot fit, so the collector gives up without retrying. That
  // must be reported exactly like an in-flight deadline death — a failed
  // capture — distinguished only by deadline_phase.
  FaultProfile profile;
  profile.truncate_p = 1.0;
  profile.base_latency = sim::Duration::seconds(10);
  RetryPolicy policy;
  policy.max_attempts = 5;
  policy.initial_backoff = sim::Duration::seconds(25);
  policy.backoff_multiplier = 1.0;
  policy.jitter = 0.0;
  policy.command_deadline = sim::Duration::seconds(30);
  Collector collector({"show ip dvmrp route"}, policy,
                      std::make_unique<FaultInjectingTransport>(6, profile));

  const CaptureReport report = collector.capture(r1(), engine_.now());
  ASSERT_EQ(report.captures.size(), 1u);
  const RawCapture& capture = report.captures[0];
  EXPECT_EQ(capture.attempts, 1u);
  EXPECT_EQ(report.attempts, 1u + capture.attempts);
  // The aborted backoff is not spent: latency covers only the attempt made.
  EXPECT_EQ(capture.latency, sim::Duration::seconds(10));
  EXPECT_EQ(capture.status, CaptureStatus::failed);
  EXPECT_EQ(capture.deadline_phase, DeadlinePhase::backoff);
  // The last attempt's own outcome survives as the proximate cause.
  EXPECT_EQ(capture.transport_status, TransportStatus::truncated);
  EXPECT_TRUE(capture.clean_text.empty());
}

TEST_F(TransportTest, GarbledTranscriptFails) {
  FaultProfile profile;
  profile.garble_p = 1.0;
  RetryPolicy policy;
  policy.max_attempts = 1;
  Collector collector({"show ip dvmrp route"}, policy,
                      std::make_unique<FaultInjectingTransport>(4, profile));

  const CaptureReport report = collector.capture(r1(), engine_.now());
  ASSERT_EQ(report.captures.size(), 1u);
  EXPECT_EQ(report.captures[0].status, CaptureStatus::failed);
  EXPECT_EQ(report.captures[0].transport_status, TransportStatus::garbled);
  // The corrupted transcript is longer than the clean one (interleaved noise).
  const std::string full =
      router::cli::telnet_capture(r1(), "show ip dvmrp route", engine_.now());
  EXPECT_GT(report.captures[0].raw_text.size(), full.size());
}

TEST_F(TransportTest, BackoffScheduleIsExactWithoutJitter) {
  FaultProfile profile;
  profile.truncate_p = 1.0;
  profile.base_latency = sim::Duration::milliseconds(100);
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff = sim::Duration::seconds(1);
  policy.backoff_multiplier = 2.0;
  policy.jitter = 0.0;
  Collector collector({"show ip dvmrp route"}, policy,
                      std::make_unique<FaultInjectingTransport>(5, profile));

  const CaptureReport report = collector.capture(r1(), engine_.now());
  ASSERT_EQ(report.captures.size(), 1u);
  // 3 attempts x 100ms, plus backoffs of 1s then 2s between them.
  EXPECT_EQ(report.captures[0].latency.total_ms(), 3 * 100 + 1000 + 2000);
}

TEST_F(TransportTest, SameSeedSameFailureSchedule) {
  const FaultProfile profile = FaultProfile::command_failure_rate(0.4);
  RetryPolicy policy;
  policy.max_attempts = 2;

  const auto run = [&](std::uint64_t seed) {
    Collector collector(default_command_set(), policy,
                        std::make_unique<FaultInjectingTransport>(seed, profile));
    std::vector<std::pair<CaptureStatus, std::size_t>> schedule;
    std::vector<std::int64_t> latencies;
    for (int cycle = 0; cycle < 12; ++cycle) {
      const CaptureReport report = collector.capture(r1(), engine_.now());
      for (const RawCapture& capture : report.captures) {
        schedule.emplace_back(capture.status, capture.attempts);
        latencies.push_back(capture.latency.total_ms());
      }
    }
    return std::make_pair(schedule, latencies);
  };

  const auto a = run(42);
  const auto b = run(42);
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);

  // The schedule actually contains failures (the profile is not a no-op).
  bool any_failure = false;
  for (const auto& [status, attempts] : a.first) {
    if (status != CaptureStatus::ok) any_failure = true;
  }
  EXPECT_TRUE(any_failure);
}

TEST_F(TransportTest, ReportFindAndHelpers) {
  Collector collector;
  const CaptureReport report = collector.capture(r1(), engine_.now());
  EXPECT_NE(report.find("show ip mbgp"), nullptr);
  EXPECT_EQ(report.find("no such command"), nullptr);
  EXPECT_EQ(report.ok_count() + report.failure_count(), report.captures.size());
}

TEST(FaultProfileTest, CommandFailureRateSplitsBudget) {
  const FaultProfile profile = FaultProfile::command_failure_rate(0.2);
  EXPECT_DOUBLE_EQ(profile.truncate_p, 0.1);
  EXPECT_DOUBLE_EQ(profile.garble_p, 0.05);
  EXPECT_DOUBLE_EQ(profile.slow_p, 0.05);
  EXPECT_DOUBLE_EQ(profile.connect_refused_p, 0.05);
}

}  // namespace
}  // namespace mantra::core
