#include <gtest/gtest.h>

#include <set>

#include "core/mantra.hpp"
#include "workload/scenario.hpp"

namespace mantra::core {
namespace {

/// Delegates to the real CLI transport but fails an exact set of commands
/// (deterministic truncation) and can refuse sessions outright — full
/// control over dark vs. partially-failed cycles for the recovery tests.
class SelectiveFailTransport : public Transport {
 public:
  void fail_command(std::string command) { failing_.insert(std::move(command)); }
  void clear_failures() { failing_.clear(); }
  void set_dark(bool dark) { dark_ = dark; }

  void connect_into(const router::MulticastRouter& router, sim::TimePoint now,
                    TransportResult& out) override {
    if (dark_) {
      out.reset();
      out.status = TransportStatus::connection_refused;
      return;
    }
    inner_.connect_into(router, now, out);
  }

  void execute_into(const router::MulticastRouter& router,
                    std::string_view command, sim::TimePoint now,
                    TransportResult& out) override {
    inner_.execute_into(router, command, now, out);
    if (failing_.count(std::string(command)) > 0) {
      out.status = TransportStatus::truncated;
      out.text.clear();
    }
  }

  void disconnect() override { inner_.disconnect(); }

 private:
  CliTransport inner_;
  std::set<std::string> failing_;
  bool dark_ = false;
};

/// The value of `field` in the newest `name` event, or nullopt.
std::optional<std::string> newest_event_field(const Telemetry& telemetry,
                                              std::string_view name,
                                              std::string_view field) {
  const std::vector<TelemetryEvent> events = telemetry.events().snapshot();
  for (auto it = events.rbegin(); it != events.rend(); ++it) {
    if (it->name != name) continue;
    for (const auto& [key, value] : it->fields) {
      if (key == field) return value;
    }
    return std::nullopt;
  }
  return std::nullopt;
}

std::size_t event_count(const Telemetry& telemetry, std::string_view name) {
  std::size_t count = 0;
  for (const TelemetryEvent& event : telemetry.events().snapshot()) {
    if (event.name == name) ++count;
  }
  return count;
}

/// Full pipeline over a small protocol-faithful scenario.
class MantraPipeline : public ::testing::Test {
 protected:
  MantraPipeline() : scenario_(make_config()) {
    scenario_.start();
    MantraConfig config;
    config.cycle = sim::Duration::minutes(15);
    monitor_ = std::make_unique<Mantra>(scenario_.engine(), config);
    monitor_->add_target(scenario_.network().router(scenario_.fixw_node()));
    monitor_->add_target(scenario_.network().router(scenario_.ucsb_node()));
    monitor_->start();
  }

  static workload::ScenarioConfig make_config() {
    workload::ScenarioConfig config;
    config.seed = 21;
    config.domains = 4;
    config.hosts_per_domain = 6;
    config.dvmrp_prefixes_per_domain = 6;
    config.report_loss = 0.02;
    config.timer_scale = 1;
    config.full_timers = true;
    config.generator.session_arrivals_per_hour = 40.0;
    config.generator.bursts_per_day = 0.0;
    return config;
  }

  void run_hours(int hours) {
    scenario_.engine().run_until(scenario_.engine().now() +
                                 sim::Duration::hours(hours));
  }

  void run_minutes(int minutes) {
    scenario_.engine().run_until(scenario_.engine().now() +
                                 sim::Duration::minutes(minutes));
  }

  workload::FixwScenario scenario_;
  std::unique_ptr<Mantra> monitor_;
};

TEST_F(MantraPipeline, CyclesAccumulateResults) {
  run_hours(2);
  const auto& results = monitor_->target_view("fixw").results();
  EXPECT_EQ(results.size(), 8u);  // 2h / 15min
  EXPECT_EQ(monitor_->target_view("ucsb-gw").results().size(), 8u);
}

TEST_F(MantraPipeline, UsageStatisticsAreLive) {
  run_hours(3);
  const CycleResult& last = monitor_->target_view("fixw").results().back();
  EXPECT_GT(last.usage.sessions, 0);
  EXPECT_GT(last.usage.participants, 0);
  EXPECT_GE(last.usage.participants, last.usage.senders);
  EXPECT_GE(last.usage.sessions, last.usage.active_sessions);
  EXPECT_GT(last.dvmrp_routes, 0u);
  EXPECT_EQ(last.parse_warnings, 0u);
}

TEST_F(MantraPipeline, LoggerRecordsEveryCycleAndReconstructs) {
  run_hours(2);
  const DataLogger& logger = monitor_->target_view("fixw").logger();
  EXPECT_EQ(logger.cycle_count(), 8u);
  const Snapshot rebuilt = logger.reconstruct(7);
  const Snapshot& latest = monitor_->target_view("fixw").latest_snapshot();
  EXPECT_EQ(rebuilt.pairs.size(), latest.pairs.size());
  EXPECT_EQ(rebuilt.routes.size(), latest.routes.size());
}

TEST_F(MantraPipeline, SeriesExtraction) {
  run_hours(2);
  const TimeSeries sessions = monitor_->series(
      "fixw", "sessions",
      [](const CycleResult& r) { return static_cast<double>(r.usage.sessions); });
  EXPECT_EQ(sessions.size(), 8u);
  EXPECT_GT(sessions.max(), 0.0);
}

TEST_F(MantraPipeline, SummaryTablesRender) {
  run_hours(2);
  const SummaryTable busiest = monitor_->busiest_sessions("fixw", 5);
  EXPECT_LE(busiest.row_count(), 5u);
  const SummaryTable senders = monitor_->top_senders("fixw", 5);
  EXPECT_LE(senders.row_count(), 5u);
  const SummaryTable overview = monitor_->overview();
  EXPECT_EQ(overview.row_count(), 2u);
  EXPECT_FALSE(overview.render().empty());
}

TEST_F(MantraPipeline, AggregateUsageAtLeastSingleView) {
  run_hours(2);
  const UsageStats fixw = compute_usage(monitor_->target_view("fixw").latest_snapshot());
  const UsageStats aggregate = monitor_->aggregate_usage();
  EXPECT_GE(aggregate.sessions, fixw.sessions);
  EXPECT_GE(aggregate.participants, fixw.participants);
}

TEST_F(MantraPipeline, RouteMonitorSeesChangesAcrossOutage) {
  run_hours(1);
  // Take FIXW's tunnel to UCSB down for an hour: UCSB's learned routes
  // expire into hold-down and are garbage-collected; the monitor's
  // cycle-to-cycle diffs must register the churn in both directions.
  scenario_.network().set_interface_enabled(scenario_.fixw_node(), 0, false);
  run_hours(1);
  const std::size_t during =
      monitor_->target_view("ucsb-gw").results().back().dvmrp_valid_routes;
  scenario_.network().set_interface_enabled(scenario_.fixw_node(), 0, true);
  run_hours(1);
  const RouteMonitor& monitor = monitor_->target_view("ucsb-gw").route_monitor();
  EXPECT_EQ(monitor.history().size(), 12u);
  EXPECT_GT(monitor.total_changes(), 0u);
  EXPECT_LT(during, monitor_->target_view("ucsb-gw").results().back().dvmrp_valid_routes);
}

TEST_F(MantraPipeline, UnknownTargetThrows) {
  EXPECT_THROW(monitor_->target_view("nonesuch").results(), std::out_of_range);
}

TEST_F(MantraPipeline, StopHaltsCycles) {
  run_hours(1);
  monitor_->stop();
  const std::size_t cycles = monitor_->target_view("fixw").results().size();
  run_hours(1);
  EXPECT_EQ(monitor_->target_view("fixw").results().size(), cycles);
}

TEST_F(MantraPipeline, TargetViewConsolidatesAccessors) {
  run_hours(2);
  const Mantra::TargetView view = monitor_->target_view("fixw");
  EXPECT_EQ(view.name(), "fixw");
  EXPECT_EQ(&view.results(), &monitor_->target_view("fixw").results());
  EXPECT_EQ(&view.logger(), &monitor_->target_view("fixw").logger());
  EXPECT_EQ(&view.route_monitor(), &monitor_->target_view("fixw").route_monitor());
  EXPECT_EQ(&view.latest_snapshot(), &monitor_->target_view("fixw").latest_snapshot());
  EXPECT_EQ(view.health(), TargetHealth::Healthy);
  EXPECT_EQ(view.consecutive_failures(), 0u);
  EXPECT_THROW(monitor_->target_view("nonesuch"), std::out_of_range);
}

TEST_F(MantraPipeline, CleanCollectionIsNeverStale) {
  run_hours(2);
  for (const CycleResult& result : monitor_->target_view("fixw").results()) {
    EXPECT_FALSE(result.stale);
    EXPECT_EQ(result.stale_tables, 0u);
    EXPECT_EQ(result.collection_failures, 0u);
    EXPECT_EQ(result.consecutive_failures, 0u);
    EXPECT_GT(result.capture_attempts, 0u);
    EXPECT_GT(result.collection_latency.total_ms(), 0);
  }
}

TEST_F(MantraPipeline, OverviewReportsHealth) {
  run_hours(1);
  const SummaryTable overview = monitor_->overview();
  const auto health_column = overview.column_index("health");
  ASSERT_TRUE(health_column.has_value());
  for (const auto& row : overview.rows()) {
    EXPECT_EQ(row[*health_column], "healthy");
  }
}

TEST_F(MantraPipeline, HealthTransitionsAreObservable) {
  MantraConfig config;
  config.cycle = sim::Duration::minutes(15);
  config.unreachable_after = 2;
  auto owned = std::make_unique<FaultInjectingTransport>(7, FaultProfile{});
  FaultInjectingTransport* faults = owned.get();
  Mantra faulty(scenario_.engine(), config, std::move(owned));
  faulty.add_target(scenario_.network().router(scenario_.fixw_node()));
  faulty.start();

  run_hours(1);
  EXPECT_EQ(faulty.target_view("fixw").health(), TargetHealth::Healthy);
  const std::size_t clean_cycles = faulty.target_view("fixw").results().size();
  EXPECT_GT(clean_cycles, 0u);

  // Take the router dark: the first dark cycle degrades the target, the
  // second (== unreachable_after) marks it unreachable; dark cycles record
  // no results.
  FaultProfile dark;
  dark.connect_refused_p = 1.0;
  faults->set_profile(dark);
  run_minutes(15);
  EXPECT_EQ(faulty.target_view("fixw").health(), TargetHealth::Degraded);
  EXPECT_EQ(faulty.target_view("fixw").consecutive_failures(), 1u);
  run_minutes(15);
  EXPECT_EQ(faulty.target_view("fixw").health(), TargetHealth::Unreachable);
  EXPECT_EQ(faulty.target_view("fixw").consecutive_failures(), 2u);
  EXPECT_EQ(faulty.target_view("fixw").results().size(), clean_cycles);

  // Recovery: the next clean cycle returns the target to Healthy and its
  // result records how many dark cycles were skipped.
  faults->set_profile(FaultProfile{});
  run_minutes(15);
  EXPECT_EQ(faulty.target_view("fixw").health(), TargetHealth::Healthy);
  EXPECT_EQ(faulty.target_view("fixw").consecutive_failures(), 0u);
  const auto& results = faulty.target_view("fixw").results();
  ASSERT_EQ(results.size(), clean_cycles + 1);
  EXPECT_EQ(results.back().consecutive_failures, 2u);
}

TEST_F(MantraPipeline, LastSuccessFreezesThroughDarkCyclesAndRecovers) {
  MantraConfig config;
  config.cycle = sim::Duration::minutes(15);
  config.unreachable_after = 2;
  auto owned = std::make_unique<FaultInjectingTransport>(7, FaultProfile{});
  FaultInjectingTransport* faults = owned.get();
  Mantra faulty(scenario_.engine(), config, std::move(owned));
  faulty.add_target(scenario_.network().router(scenario_.fixw_node()));

  // Before any cycle has run the target has never succeeded.
  EXPECT_FALSE(faulty.target_view("fixw").last_success().has_value());
  faulty.start();

  run_hours(1);
  const auto after_clean = faulty.target_view("fixw").last_success();
  ASSERT_TRUE(after_clean.has_value());
  // The last recorded cycle's timestamp, i.e. the most recent cycle tick.
  EXPECT_EQ(*after_clean, faulty.target_view("fixw").results().back().t);

  // Dark cycles leave last_success frozen at the pre-outage instant.
  FaultProfile dark;
  dark.connect_refused_p = 1.0;
  faults->set_profile(dark);
  run_minutes(30);
  EXPECT_EQ(faulty.target_view("fixw").health(), TargetHealth::Unreachable);
  ASSERT_TRUE(faulty.target_view("fixw").last_success().has_value());
  EXPECT_EQ(*faulty.target_view("fixw").last_success(), *after_clean);

  // Recovery advances it to the recovering cycle's timestamp.
  faults->set_profile(FaultProfile{});
  run_minutes(15);
  ASSERT_TRUE(faulty.target_view("fixw").last_success().has_value());
  EXPECT_GT(*faulty.target_view("fixw").last_success(), *after_clean);
  EXPECT_EQ(*faulty.target_view("fixw").last_success(),
            faulty.target_view("fixw").results().back().t);

  // The overview table surfaces the same instant.
  const SummaryTable overview = faulty.overview();
  const auto column = overview.column_index("last_success");
  ASSERT_TRUE(column.has_value());
  EXPECT_EQ(overview.rows()[0][*column],
            faulty.target_view("fixw").last_success()->to_string());
}

TEST_F(MantraPipeline, RecoveryToDegradedCarriesHealthContext) {
  MantraConfig config;
  config.cycle = sim::Duration::minutes(15);
  config.retry.max_attempts = 1;
  config.unreachable_after = 2;
  config.telemetry.enabled = true;
  auto owned = std::make_unique<SelectiveFailTransport>();
  SelectiveFailTransport* transport = owned.get();
  Mantra faulty(scenario_.engine(), config, std::move(owned));
  faulty.add_target(scenario_.network().router(scenario_.fixw_node()));
  faulty.start();

  run_hours(1);
  EXPECT_EQ(event_count(faulty.telemetry(), "target_recovered"), 0u);

  // Two dark cycles, then a recovery whose capture is itself partially
  // failed: the dark spell ends, but the target lands in Degraded — and the
  // event must say so.
  transport->set_dark(true);
  run_minutes(30);
  EXPECT_EQ(faulty.target_view("fixw").consecutive_failures(), 2u);
  transport->set_dark(false);
  transport->fail_command("show ip dvmrp route");
  run_minutes(15);

  EXPECT_EQ(faulty.target_view("fixw").health(), TargetHealth::Degraded);
  EXPECT_EQ(faulty.target_view("fixw").results().back().consecutive_failures, 2u);
  EXPECT_TRUE(faulty.target_view("fixw").results().back().stale);
  ASSERT_EQ(event_count(faulty.telemetry(), "target_recovered"), 1u);
  EXPECT_EQ(newest_event_field(faulty.telemetry(), "target_recovered", "health"),
            "degraded");
  EXPECT_EQ(newest_event_field(faulty.telemetry(), "target_recovered",
                               "dark_cycles"),
            "2");

  // Further degraded-but-recorded cycles are not recoveries: no dark spell
  // is ending, so no event fires.
  run_minutes(30);
  EXPECT_EQ(event_count(faulty.telemetry(), "target_recovered"), 1u);
}

TEST_F(MantraPipeline, RecoveryToHealthyCarriesHealthContext) {
  MantraConfig config;
  config.cycle = sim::Duration::minutes(15);
  config.retry.max_attempts = 1;
  config.telemetry.enabled = true;
  auto owned = std::make_unique<SelectiveFailTransport>();
  SelectiveFailTransport* transport = owned.get();
  Mantra faulty(scenario_.engine(), config, std::move(owned));
  faulty.add_target(scenario_.network().router(scenario_.fixw_node()));
  faulty.start();

  run_hours(1);
  transport->set_dark(true);
  run_minutes(15);
  transport->set_dark(false);
  run_minutes(15);

  EXPECT_EQ(faulty.target_view("fixw").health(), TargetHealth::Healthy);
  ASSERT_EQ(event_count(faulty.telemetry(), "target_recovered"), 1u);
  EXPECT_EQ(newest_event_field(faulty.telemetry(), "target_recovered", "health"),
            "healthy");
  EXPECT_EQ(newest_event_field(faulty.telemetry(), "target_recovered",
                               "dark_cycles"),
            "1");
}

TEST_F(MantraPipeline, MonitorStatusReportsCollectionHealth) {
  MantraConfig config;
  config.cycle = sim::Duration::minutes(15);
  config.unreachable_after = 2;
  auto owned = std::make_unique<FaultInjectingTransport>(7, FaultProfile{});
  FaultInjectingTransport* faults = owned.get();
  Mantra faulty(scenario_.engine(), config, std::move(owned));
  faulty.add_target(scenario_.network().router(scenario_.fixw_node()));
  faulty.start();

  run_hours(1);
  FaultProfile dark;
  dark.connect_refused_p = 1.0;
  faults->set_profile(dark);
  run_minutes(30);

  const MonitorStatus status = faulty.status();
  EXPECT_EQ(status.now, scenario_.engine().now());
  EXPECT_EQ(status.cycles_run, 6u);  // 1h clean + 30min dark at 15min cycles
  ASSERT_EQ(status.targets.size(), 1u);
  const MonitorStatus::Target& fixw = status.targets[0];
  EXPECT_EQ(fixw.name, "fixw");
  EXPECT_EQ(fixw.health, TargetHealth::Unreachable);
  EXPECT_EQ(fixw.cycles_recorded, 4u);
  EXPECT_EQ(fixw.consecutive_failures, 2u);
  ASSERT_TRUE(fixw.last_success.has_value());
  // Staleness is the age of the data being served: now - last_success.
  EXPECT_EQ(fixw.staleness, status.now - *fixw.last_success);
  EXPECT_GE(fixw.staleness, sim::Duration::minutes(30));
  // Latency percentiles come from the recorded cycle history, so they are
  // populated (clean CLI captures cost a fixed per-command latency).
  EXPECT_GT(fixw.latency_p50_s, 0.0);
  EXPECT_GE(fixw.latency_p95_s, fixw.latency_p50_s);
  EXPECT_GE(fixw.latency_max_s, fixw.latency_p95_s);
  EXPECT_EQ(fixw.last_latency.total_seconds(), fixw.latency_max_s);

  // The rendered table has one row per target and stays renderable.
  const SummaryTable table = status.to_table();
  EXPECT_EQ(table.row_count(), 1u);
  EXPECT_FALSE(table.render().empty());
  EXPECT_TRUE(table.column_index("staleness").has_value());
}

// Pinned semantics for a target that has NEVER produced a usable capture:
// last_success stays unset, the status row renders "never", and staleness is
// the age of the whole run (now - sim::TimePoint::start()) — the monitor has
// been serving no data for its entire lifetime, so the age of the data it
// serves is the lifetime itself. The fleet-merged status (core/fleet) reuses
// these rows verbatim, so the same semantics hold fleet-wide.
TEST_F(MantraPipeline, MonitorStatusNeverSucceededTargetAgesFromRunStart) {
  MantraConfig config;
  config.cycle = sim::Duration::minutes(15);
  config.unreachable_after = 2;
  FaultProfile dark;
  dark.connect_refused_p = 1.0;
  Mantra faulty(scenario_.engine(), config,
                std::make_unique<FaultInjectingTransport>(7, dark));
  faulty.add_target(scenario_.network().router(scenario_.fixw_node()));
  faulty.start();
  run_hours(1);

  const MonitorStatus status = faulty.status();
  ASSERT_EQ(status.targets.size(), 1u);
  const MonitorStatus::Target& row = status.targets[0];
  EXPECT_FALSE(row.last_success.has_value());
  EXPECT_EQ(row.cycles_recorded, 0u);
  EXPECT_EQ(row.health, TargetHealth::Unreachable);
  EXPECT_EQ(row.staleness, status.now - sim::TimePoint::start());
  EXPECT_GE(row.staleness, sim::Duration::hours(1));
  // No recorded cycles: every latency statistic reads zero, not garbage.
  EXPECT_EQ(row.last_latency, sim::Duration());
  EXPECT_DOUBLE_EQ(row.latency_p50_s, 0.0);
  EXPECT_DOUBLE_EQ(row.latency_p95_s, 0.0);
  EXPECT_DOUBLE_EQ(row.latency_max_s, 0.0);

  const SummaryTable table = status.to_table();
  const auto last_success = table.column_index("last_success");
  const auto staleness = table.column_index("staleness");
  ASSERT_TRUE(last_success.has_value() && staleness.has_value());
  EXPECT_EQ(table.rows()[0][*last_success], "never");
  EXPECT_EQ(table.rows()[0][*staleness], row.staleness.to_string());
}

TEST_F(MantraPipeline, FaultyCollectionDegradesGracefully) {
  // The acceptance run: 20% command-failure rate, retries disabled so every
  // fault surfaces. The faulty monitor rides the same scenario as the
  // fault-free fixture monitor, so every clean capture it makes is
  // byte-identical to the fixture's at the same instant.
  MantraConfig config;
  config.cycle = sim::Duration::minutes(15);
  config.retry.max_attempts = 1;
  Mantra faulty(scenario_.engine(), config,
                std::make_unique<FaultInjectingTransport>(
                    99, FaultProfile::command_failure_rate(0.2)));
  faulty.add_target(scenario_.network().router(scenario_.fixw_node()));
  faulty.start();

  run_hours(6);

  const auto& clean = monitor_->target_view("fixw").results();
  const auto& degraded = faulty.target_view("fixw").results();
  ASSERT_FALSE(clean.empty());
  ASSERT_FALSE(degraded.empty());
  // Dark cycles may be skipped, never invented.
  EXPECT_LE(degraded.size(), clean.size());

  std::size_t stale_cycles = 0;
  bool seen_routes = false;
  for (const CycleResult& result : degraded) {
    if (result.stale) ++stale_cycles;
    EXPECT_EQ(result.stale, result.stale_tables > 0);
    EXPECT_GE(result.collection_failures, result.stale_tables);

    // Stale-carry-forward bound: every per-cycle statistic must equal the
    // fault-free run's value at this cycle or at some earlier cycle — a
    // failed capture repeats old truth, it never fabricates or zeroes.
    bool sessions_ok = false;
    bool routes_ok = false;
    for (const CycleResult& reference : clean) {
      if (reference.t > result.t) break;
      if (reference.usage.sessions == result.usage.sessions) sessions_ok = true;
      if (reference.dvmrp_routes == result.dvmrp_routes) routes_ok = true;
    }
    EXPECT_TRUE(sessions_ok) << "sessions value outside stale-carry-forward "
                                "bounds at " << result.t.to_string();
    EXPECT_TRUE(routes_ok) << "route count outside stale-carry-forward "
                              "bounds at " << result.t.to_string();

    // Once populated, carried-forward tables never collapse to zero.
    if (result.dvmrp_routes > 0) {
      seen_routes = true;
    } else {
      EXPECT_FALSE(seen_routes)
          << "dvmrp routes zeroed after being populated at "
          << result.t.to_string();
    }
  }
  EXPECT_TRUE(seen_routes);
  EXPECT_GT(stale_cycles, 0u);

  const TargetHealth health = faulty.target_view("fixw").health();
  EXPECT_TRUE(health == TargetHealth::Healthy || health == TargetHealth::Degraded ||
              health == TargetHealth::Unreachable);
}

TEST(MantraConfigValidate, RejectsBadFieldsWithNamedMessages) {
  sim::Engine engine;
  const auto expect_reject = [&engine](const std::function<void(MantraConfig&)>& mutate,
                                       std::string_view field) {
    MantraConfig config;
    mutate(config);
    try {
      Mantra monitor(engine, config);
      FAIL() << "expected rejection of bad " << field;
    } catch (const std::invalid_argument& error) {
      EXPECT_NE(std::string_view(error.what()).find(field),
                std::string_view::npos)
          << "message should name " << field << ", got: " << error.what();
    }
  };

  expect_reject([](MantraConfig& c) { c.cycle = sim::Duration(); }, "cycle");
  expect_reject([](MantraConfig& c) { c.sender_threshold_kbps = -1.0; },
                "sender_threshold_kbps");
  expect_reject([](MantraConfig& c) { c.spike_window = 1; }, "spike_window");
  expect_reject([](MantraConfig& c) { c.spike_k = 0.0; }, "spike_k");
  expect_reject([](MantraConfig& c) { c.retry.max_attempts = 0; },
                "retry.max_attempts");
  expect_reject(
      [](MantraConfig& c) { c.retry.initial_backoff = sim::Duration::seconds(-1); },
      "retry.initial_backoff");
  expect_reject([](MantraConfig& c) { c.retry.backoff_multiplier = 0.5; },
                "retry.backoff_multiplier");
  expect_reject([](MantraConfig& c) { c.retry.jitter = 1.5; }, "retry.jitter");
  expect_reject([](MantraConfig& c) { c.retry.command_deadline = sim::Duration(); },
                "retry.command_deadline");
  expect_reject([](MantraConfig& c) { c.unreachable_after = 0; },
                "unreachable_after");
}

TEST(MantraConfigValidate, AcceptsDefaults) {
  sim::Engine engine;
  EXPECT_NO_THROW(Mantra(engine, MantraConfig{}));
}

TEST_F(MantraPipeline, RouteInjectionFlagsSpike) {
  // Let the detector build a baseline, then inject.
  run_hours(3);
  scenario_.schedule_route_injection(scenario_.engine().now() + sim::Duration::minutes(20),
                                     1500, sim::Duration::hours(2));
  run_hours(1);
  bool spiked = false;
  for (const CycleResult& result : monitor_->target_view("ucsb-gw").results()) {
    if (result.route_spike) spiked = true;
  }
  EXPECT_TRUE(spiked);
}

}  // namespace
}  // namespace mantra::core
