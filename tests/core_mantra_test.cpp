#include <gtest/gtest.h>

#include "core/mantra.hpp"
#include "workload/scenario.hpp"

namespace mantra::core {
namespace {

/// Full pipeline over a small protocol-faithful scenario.
class MantraPipeline : public ::testing::Test {
 protected:
  MantraPipeline() : scenario_(make_config()) {
    scenario_.start();
    MantraConfig config;
    config.cycle = sim::Duration::minutes(15);
    monitor_ = std::make_unique<Mantra>(scenario_.engine(), config);
    monitor_->add_target(scenario_.network().router(scenario_.fixw_node()));
    monitor_->add_target(scenario_.network().router(scenario_.ucsb_node()));
    monitor_->start();
  }

  static workload::ScenarioConfig make_config() {
    workload::ScenarioConfig config;
    config.seed = 21;
    config.domains = 4;
    config.hosts_per_domain = 6;
    config.dvmrp_prefixes_per_domain = 6;
    config.report_loss = 0.02;
    config.timer_scale = 1;
    config.full_timers = true;
    config.generator.session_arrivals_per_hour = 40.0;
    config.generator.bursts_per_day = 0.0;
    return config;
  }

  void run_hours(int hours) {
    scenario_.engine().run_until(scenario_.engine().now() +
                                 sim::Duration::hours(hours));
  }

  workload::FixwScenario scenario_;
  std::unique_ptr<Mantra> monitor_;
};

TEST_F(MantraPipeline, CyclesAccumulateResults) {
  run_hours(2);
  const auto& results = monitor_->results("fixw");
  EXPECT_EQ(results.size(), 8u);  // 2h / 15min
  EXPECT_EQ(monitor_->results("ucsb-gw").size(), 8u);
}

TEST_F(MantraPipeline, UsageStatisticsAreLive) {
  run_hours(3);
  const CycleResult& last = monitor_->results("fixw").back();
  EXPECT_GT(last.usage.sessions, 0);
  EXPECT_GT(last.usage.participants, 0);
  EXPECT_GE(last.usage.participants, last.usage.senders);
  EXPECT_GE(last.usage.sessions, last.usage.active_sessions);
  EXPECT_GT(last.dvmrp_routes, 0u);
  EXPECT_EQ(last.parse_warnings, 0u);
}

TEST_F(MantraPipeline, LoggerRecordsEveryCycleAndReconstructs) {
  run_hours(2);
  const DataLogger& logger = monitor_->logger("fixw");
  EXPECT_EQ(logger.cycle_count(), 8u);
  const Snapshot rebuilt = logger.reconstruct(7);
  const Snapshot& latest = monitor_->latest_snapshot("fixw");
  EXPECT_EQ(rebuilt.pairs.size(), latest.pairs.size());
  EXPECT_EQ(rebuilt.routes.size(), latest.routes.size());
}

TEST_F(MantraPipeline, SeriesExtraction) {
  run_hours(2);
  const TimeSeries sessions = monitor_->series(
      "fixw", "sessions",
      [](const CycleResult& r) { return static_cast<double>(r.usage.sessions); });
  EXPECT_EQ(sessions.size(), 8u);
  EXPECT_GT(sessions.max(), 0.0);
}

TEST_F(MantraPipeline, SummaryTablesRender) {
  run_hours(2);
  const SummaryTable busiest = monitor_->busiest_sessions("fixw", 5);
  EXPECT_LE(busiest.row_count(), 5u);
  const SummaryTable senders = monitor_->top_senders("fixw", 5);
  EXPECT_LE(senders.row_count(), 5u);
  const SummaryTable overview = monitor_->overview();
  EXPECT_EQ(overview.row_count(), 2u);
  EXPECT_FALSE(overview.render().empty());
}

TEST_F(MantraPipeline, AggregateUsageAtLeastSingleView) {
  run_hours(2);
  const UsageStats fixw = compute_usage(monitor_->latest_snapshot("fixw"));
  const UsageStats aggregate = monitor_->aggregate_usage();
  EXPECT_GE(aggregate.sessions, fixw.sessions);
  EXPECT_GE(aggregate.participants, fixw.participants);
}

TEST_F(MantraPipeline, RouteMonitorSeesChangesAcrossOutage) {
  run_hours(1);
  // Take FIXW's tunnel to UCSB down for an hour: UCSB's learned routes
  // expire into hold-down and are garbage-collected; the monitor's
  // cycle-to-cycle diffs must register the churn in both directions.
  scenario_.network().set_interface_enabled(scenario_.fixw_node(), 0, false);
  run_hours(1);
  const std::size_t during =
      monitor_->results("ucsb-gw").back().dvmrp_valid_routes;
  scenario_.network().set_interface_enabled(scenario_.fixw_node(), 0, true);
  run_hours(1);
  const RouteMonitor& monitor = monitor_->route_monitor("ucsb-gw");
  EXPECT_EQ(monitor.history().size(), 12u);
  EXPECT_GT(monitor.total_changes(), 0u);
  EXPECT_LT(during, monitor_->results("ucsb-gw").back().dvmrp_valid_routes);
}

TEST_F(MantraPipeline, UnknownTargetThrows) {
  EXPECT_THROW(monitor_->results("nonesuch"), std::out_of_range);
}

TEST_F(MantraPipeline, StopHaltsCycles) {
  run_hours(1);
  monitor_->stop();
  const std::size_t cycles = monitor_->results("fixw").size();
  run_hours(1);
  EXPECT_EQ(monitor_->results("fixw").size(), cycles);
}

TEST_F(MantraPipeline, RouteInjectionFlagsSpike) {
  // Let the detector build a baseline, then inject.
  run_hours(3);
  scenario_.schedule_route_injection(scenario_.engine().now() + sim::Duration::minutes(20),
                                     1500, sim::Duration::hours(2));
  run_hours(1);
  bool spiked = false;
  for (const CycleResult& result : monitor_->results("ucsb-gw")) {
    if (result.route_spike) spiked = true;
  }
  EXPECT_TRUE(spiked);
}

}  // namespace
}  // namespace mantra::core
