// core/telemetry: metric registry semantics and expositions, tracer spans,
// event log ring; thread-safety under the worker pool; and the tentpole
// invariant — telemetry is write-only from the monitored path, so a run's
// results, CSV series and archive bytes are byte-identical with the sinks
// enabled or disabled.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/mantra.hpp"
#include "core/parallel.hpp"
#include "core/telemetry.hpp"
#include "workload/scenario.hpp"

namespace mantra::core {
namespace {

// --- MetricsRegistry ---------------------------------------------------------

TEST(MetricsRegistry, CountersGaugesAndLabelsAreIndependent) {
  MetricsRegistry registry(/*enabled=*/true);
  registry.counter("requests", {{"target", "fixw"}}).inc();
  registry.counter("requests", {{"target", "fixw"}}).inc(2);
  registry.counter("requests", {{"target", "ucsb-gw"}}).inc();
  registry.counter("other").inc(5);
  registry.gauge("depth").set(3.5);
  registry.gauge("depth").add(-1.5);

  EXPECT_EQ(registry.counter_value("requests", {{"target", "fixw"}}), 3u);
  EXPECT_EQ(registry.counter_value("requests", {{"target", "ucsb-gw"}}), 1u);
  EXPECT_EQ(registry.counter_total("requests"), 4u);
  EXPECT_EQ(registry.counter_total("other"), 5u);
  EXPECT_EQ(registry.counter_total("absent"), 0u);
  EXPECT_DOUBLE_EQ(registry.gauge("depth").value(), 2.0);
  // Label order at the call site is irrelevant.
  registry.counter("multi", {{"a", "1"}, {"b", "2"}}).inc();
  EXPECT_EQ(registry.counter_value("multi", {{"b", "2"}, {"a", "1"}}), 1u);
}

TEST(MetricsRegistry, HistogramBucketsCountAndQuantiles) {
  MetricsRegistry registry(/*enabled=*/true);
  Histogram& latency =
      registry.histogram("lat", {}, std::vector<double>{1.0, 2.0, 4.0});
  for (const double v : {0.5, 0.5, 1.5, 3.0, 100.0}) latency.observe(v);

  EXPECT_EQ(latency.count(), 5u);
  EXPECT_DOUBLE_EQ(latency.sum(), 105.5);
  EXPECT_EQ(latency.cumulative_count(0), 2u);  // <= 1.0
  EXPECT_EQ(latency.cumulative_count(1), 3u);  // <= 2.0
  EXPECT_EQ(latency.cumulative_count(2), 4u);  // <= 4.0 (+Inf holds the 100)
  // Quantiles interpolate within the containing bucket.
  EXPECT_GT(latency.quantile(0.5), 0.0);
  EXPECT_LE(latency.quantile(0.5), 2.0);
  // A rank landing in the +Inf bucket degrades to the largest finite bound.
  EXPECT_DOUBLE_EQ(latency.quantile(1.0), 4.0);
  EXPECT_EQ(registry.find_histogram("lat", {}), &latency);
  EXPECT_EQ(registry.find_histogram("absent", {}), nullptr);
}

TEST(MetricsRegistry, PrometheusTextExposition) {
  MetricsRegistry registry(/*enabled=*/true);
  registry.counter("mantra_cycles_total").inc(7);
  registry.counter("mantra_capture_status_total",
                   {{"target", "fixw"}, {"status", "ok"}})
      .inc(5);
  registry.gauge("mantra_pool_queue_depth").set(2);
  registry.histogram("mantra_lat", {}, std::vector<double>{0.5, 1.0}).observe(0.7);

  const std::string text = registry.prometheus_text();
  EXPECT_NE(text.find("# TYPE mantra_cycles_total counter\n"), std::string::npos);
  EXPECT_NE(text.find("mantra_cycles_total 7\n"), std::string::npos);
  // Labels are serialized sorted by key.
  EXPECT_NE(text.find("mantra_capture_status_total{status=\"ok\","
                      "target=\"fixw\"} 5\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE mantra_pool_queue_depth gauge\n"),
            std::string::npos);
  EXPECT_NE(text.find("mantra_pool_queue_depth 2\n"), std::string::npos);
  // Histogram exposition: cumulative buckets, +Inf, _sum and _count.
  EXPECT_NE(text.find("mantra_lat_bucket{le=\"0.5\"} 0\n"), std::string::npos);
  EXPECT_NE(text.find("mantra_lat_bucket{le=\"1\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("mantra_lat_bucket{le=\"+Inf\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("mantra_lat_sum 0.7\n"), std::string::npos);
  EXPECT_NE(text.find("mantra_lat_count 1\n"), std::string::npos);

  // The JSON dump carries the same families.
  const std::string json = registry.json_dump();
  EXPECT_NE(json.find("\"mantra_cycles_total\""), std::string::npos);
  EXPECT_NE(json.find("\"mantra_lat\""), std::string::npos);
}

// Exposition-format spec compliance: label *values* must escape backslash,
// double quote and line feed. A scraper reading the hostile exposition must
// see one well-formed sample per line with the escapes in place.
TEST(MetricsRegistry, PrometheusLabelValuesEscapeHostileNames) {
  MetricsRegistry registry(/*enabled=*/true);
  registry.counter("mantra_cycles_total",
                   {{"target", "evil\"quote"}})
      .inc();
  registry.counter("mantra_cycles_total",
                   {{"target", "back\\slash"}})
      .inc(2);
  registry.counter("mantra_cycles_total",
                   {{"target", "new\nline"}})
      .inc(3);

  const std::string text = registry.prometheus_text();
  EXPECT_NE(text.find("mantra_cycles_total{target=\"evil\\\"quote\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("mantra_cycles_total{target=\"back\\\\slash\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("mantra_cycles_total{target=\"new\\nline\"} 3\n"),
            std::string::npos);
  // No raw newline may survive inside a label value: every line of the
  // exposition is a comment or a complete `name{labels} value` sample.
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty() || line[0] == '#') continue;
    EXPECT_NE(line.find(' '), std::string::npos) << "torn sample: " << line;
  }
  // Escaped instances stay distinct, and lookup with the raw labels still
  // resolves (the escape is applied consistently on both paths).
  EXPECT_EQ(registry.counter_value("mantra_cycles_total",
                                   {{"target", "evil\"quote"}}),
            1u);
  EXPECT_EQ(registry.counter_value("mantra_cycles_total",
                                   {{"target", "back\\slash"}}),
            2u);
}

// Satellite: golden-file conformance for the exposition. One registry,
// every metric kind, help texts, sorted labels — the rendered text must
// match byte-for-byte AND pass the lint checker. Guards the format against
// accidental drift (scrapers parse these bytes).
TEST(MetricsRegistry, PrometheusExpositionMatchesGolden) {
  MetricsRegistry registry(/*enabled=*/true);
  registry.set_help("mantra_cycles_total", "Monitoring cycles executed.");
  registry.counter("mantra_cycles_total").inc(96);
  registry.counter("mantra_capture_status_total",
                   {{"target", "fixw"}, {"status", "ok"}})
      .inc(90);
  registry.counter("mantra_capture_status_total",
                   {{"target", "fixw"}, {"status", "failed"}})
      .inc(6);
  registry.set_help("mantra_targets", "Targets registered with the monitor.");
  registry.gauge("mantra_targets").set(2);
  Histogram& duration = registry.histogram("mantra_cycle_duration_seconds", {},
                                           std::vector<double>{0.5, 1.0});
  duration.observe(0.25);
  duration.observe(0.75);

  const std::string golden =
      "# TYPE mantra_capture_status_total counter\n"
      "mantra_capture_status_total{status=\"failed\",target=\"fixw\"} 6\n"
      "mantra_capture_status_total{status=\"ok\",target=\"fixw\"} 90\n"
      "# HELP mantra_cycles_total Monitoring cycles executed.\n"
      "# TYPE mantra_cycles_total counter\n"
      "mantra_cycles_total 96\n"
      "# HELP mantra_targets Targets registered with the monitor.\n"
      "# TYPE mantra_targets gauge\n"
      "mantra_targets 2\n"
      "# TYPE mantra_cycle_duration_seconds histogram\n"
      "mantra_cycle_duration_seconds_bucket{le=\"0.5\"} 1\n"
      "mantra_cycle_duration_seconds_bucket{le=\"1\"} 2\n"
      "mantra_cycle_duration_seconds_bucket{le=\"+Inf\"} 2\n"
      "mantra_cycle_duration_seconds_sum 1\n"
      "mantra_cycle_duration_seconds_count 2\n";
  EXPECT_EQ(registry.prometheus_text(), golden);
  // The snapshot path funnels through the same renderer — same bytes.
  EXPECT_EQ(prometheus_text_from(registry.snapshot()), golden);
  // And the golden itself is lint-clean.
  EXPECT_TRUE(prometheus_lint(golden).empty());
}

TEST(MetricsRegistry, PrometheusLintFlagsMalformedExpositions) {
  // The real exposition (with hostile label values) passes.
  MetricsRegistry registry(/*enabled=*/true);
  registry.counter("ok_total", {{"target", "evil\"quote\\and\nnewline"}}).inc();
  registry.histogram("lat", {}, std::vector<double>{1.0}).observe(0.5);
  EXPECT_TRUE(prometheus_lint(registry.prometheus_text()).empty());

  // A sample with no preceding # TYPE.
  EXPECT_FALSE(prometheus_lint("orphan_metric 1\n").empty());
  // Type mismatch: counter sample under a gauge family is fine, but a
  // histogram _bucket under a counter family is not.
  EXPECT_FALSE(prometheus_lint("# TYPE x counter\n"
                               "x_bucket{le=\"+Inf\"} 1\n")
                   .empty());
  // Malformed metric name.
  EXPECT_FALSE(prometheus_lint("# TYPE 9bad counter\n9bad 1\n").empty());
  // Repeated family.
  EXPECT_FALSE(prometheus_lint("# TYPE x counter\nx 1\n"
                               "# TYPE x counter\nx 2\n")
                   .empty());
  // Non-cumulative histogram buckets.
  EXPECT_FALSE(prometheus_lint("# TYPE h histogram\n"
                               "h_bucket{le=\"1\"} 5\n"
                               "h_bucket{le=\"+Inf\"} 3\n"
                               "h_sum 1\n"
                               "h_count 3\n")
                   .empty());
  // _count disagreeing with the +Inf bucket.
  EXPECT_FALSE(prometheus_lint("# TYPE h histogram\n"
                               "h_bucket{le=\"1\"} 1\n"
                               "h_bucket{le=\"+Inf\"} 2\n"
                               "h_sum 1\n"
                               "h_count 7\n")
                   .empty());
  // Unterminated label value.
  EXPECT_FALSE(prometheus_lint("# TYPE x counter\n"
                               "x{target=\"oops} 1\n")
                   .empty());
}

TEST(MetricsRegistry, DisabledRegistryRecordsNothing) {
  MetricsRegistry registry(/*enabled=*/false);
  registry.counter("c").inc(10);
  registry.gauge("g").set(1.0);
  registry.histogram("h").observe(2.0);
  EXPECT_EQ(registry.counter_total("c"), 0u);
  EXPECT_EQ(registry.find_histogram("h", {}), nullptr);
  EXPECT_EQ(registry.prometheus_text(), "");
}

// --- Tracer ------------------------------------------------------------------

TEST(Tracer, ScopesRecordSpansWithSimAndWallIntervals) {
  Tracer tracer(/*enabled=*/true);
  {
    Tracer::Scope scope =
        tracer.span("capture", "collect", sim::TimePoint::from_ms(900'000));
    scope.arg("target", "fixw");
    scope.set_sim_interval(sim::TimePoint::from_ms(900'000),
                           sim::Duration::seconds(12));
  }
  ASSERT_EQ(tracer.span_count(), 1u);
  const TraceSpan span = tracer.snapshot()[0];
  EXPECT_EQ(span.name, "capture");
  EXPECT_EQ(span.category, "collect");
  EXPECT_EQ(span.sim_ts_ms, 900'000);
  EXPECT_EQ(span.sim_dur_ms, 12'000);
  EXPECT_GE(span.wall_dur_us, 0);
  EXPECT_GT(span.tid, 0u);
  ASSERT_EQ(span.args.size(), 1u);
  EXPECT_EQ(span.args[0].first, "target");

  const std::string json = tracer.chrome_trace_json();
  // Loadable trace_event JSON: complete events plus process metadata.
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"M\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"capture\""), std::string::npos);
  EXPECT_NE(json.find("\"sim_dur_ms\": 12000"), std::string::npos);
}

// Satellite: the export is Perfetto-legible — process_name metadata first,
// thread_name metadata per named tid (in tid order, before any span
// references the lane), ts/dur in *simulated* microseconds, and span args
// carried through. The golden covers the exact record shapes Perfetto's
// trace_event importer keys on.
TEST(Tracer, ChromeTraceJsonIsPerfettoLegible) {
  Tracer tracer(/*enabled=*/true);
  tracer.set_thread_name(1, "driver");
  tracer.set_thread_name(2, "target:fixw");
  TraceSpan span;
  span.name = "capture";
  span.category = "collect";
  span.sim_ts_ms = 900'000;
  span.sim_dur_ms = 12'000;
  span.wall_dur_us = 77;  // wall time must NOT leak into the export
  span.tid = 2;
  span.args = {{"corr", "c1/fixw/show_ip_dvmrp_route/a1"}, {"status", "ok"}};
  tracer.record(std::move(span));

  const std::string json = tracer.chrome_trace_json();
  // Metadata: one process_name record, then thread_name per named tid.
  EXPECT_NE(json.find("{\"ph\": \"M\", \"pid\": 1, \"name\": \"process_name\", "
                      "\"args\": {\"name\": \"mantra\"}}"),
            std::string::npos);
  const std::size_t driver_lane =
      json.find("{\"ph\": \"M\", \"pid\": 1, \"tid\": 1, "
                "\"name\": \"thread_name\", \"args\": {\"name\": \"driver\"}}");
  const std::size_t target_lane =
      json.find("{\"ph\": \"M\", \"pid\": 1, \"tid\": 2, "
                "\"name\": \"thread_name\", "
                "\"args\": {\"name\": \"target:fixw\"}}");
  ASSERT_NE(driver_lane, std::string::npos);
  ASSERT_NE(target_lane, std::string::npos);
  EXPECT_LT(driver_lane, target_lane);  // tid order
  // The complete event: sim µs timestamps, the lane's tid, args in order.
  const std::size_t event = json.find(
      "{\"name\": \"capture\", \"cat\": \"collect\", \"ph\": \"X\", "
      "\"pid\": 1, \"tid\": 2, \"ts\": 900000000, \"dur\": 12000000, "
      "\"args\": {\"sim_ts_ms\": 900000, \"sim_dur_ms\": 12000, "
      "\"corr\": \"c1/fixw/show_ip_dvmrp_route/a1\", \"status\": \"ok\"}}");
  ASSERT_NE(event, std::string::npos);
  EXPECT_LT(target_lane, event);  // lanes are labeled before use
  // Wall-clock numbers are absent: the export is a pure function of the run.
  EXPECT_EQ(json.find("77"), std::string::npos);
}

TEST(Tracer, BoundedSpanStorageCountsDrops) {
  Tracer tracer(/*enabled=*/true, /*max_spans=*/4);
  for (int i = 0; i < 10; ++i) {
    Tracer::Scope scope = tracer.span("s", "c", sim::TimePoint::start());
  }
  EXPECT_EQ(tracer.span_count(), 4u);
  EXPECT_EQ(tracer.dropped(), 6u);
}

TEST(Tracer, DisabledTracerHandsOutInertScopes) {
  Tracer tracer(/*enabled=*/false);
  {
    Tracer::Scope scope = tracer.span("s", "c", sim::TimePoint::start());
    scope.arg("k", "v");
    scope.set_sim_interval(sim::TimePoint::start(), sim::Duration::seconds(1));
  }
  EXPECT_EQ(tracer.span_count(), 0u);
  EXPECT_EQ(tracer.dropped(), 0u);
}

// --- EventLog ----------------------------------------------------------------

TEST(EventLog, RingKeepsNewestAndRendersLogfmt) {
  EventLog log(/*enabled=*/true, /*capacity=*/3);
  for (int i = 0; i < 5; ++i) {
    log.log(EventLevel::info, "tick", sim::TimePoint::from_ms(i * 1000),
            {{"n", std::to_string(i)}});
  }
  log.log(EventLevel::warn, "target_unreachable",
          sim::TimePoint::from_ms(9000),
          {{"target", "bdr2"}, {"detail", "gone dark"}});

  EXPECT_EQ(log.size(), 3u);
  EXPECT_EQ(log.total_logged(), 6u);
  EXPECT_EQ(log.dropped(), 3u);
  const std::vector<TelemetryEvent> events = log.snapshot();
  EXPECT_EQ(events.front().fields[0].second, "3");  // oldest survivor
  EXPECT_EQ(events.back().name, "target_unreachable");
  // Sequence numbers preserve global arrival order across the drop.
  EXPECT_LT(events.front().seq, events.back().seq);

  const std::string text = log.logfmt();
  EXPECT_NE(text.find("sim_ts=9000 level=warn event=target_unreachable "
                      "target=bdr2 detail=\"gone dark\""),
            std::string::npos);
  // last_n trims from the front.
  const std::string tail = log.logfmt(1);
  EXPECT_EQ(tail.find("event=tick"), std::string::npos);
  EXPECT_NE(tail.find("event=target_unreachable"), std::string::npos);
}

// Minimal logfmt scanner used to prove the rendering round-trips: values
// are either a bare token (no spaces/quotes/equals/controls) or a quoted
// string with \" \\ \n \r \t escapes.
std::vector<std::pair<std::string, std::string>> parse_logfmt_line(
    const std::string& line) {
  std::vector<std::pair<std::string, std::string>> pairs;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && line[i] == ' ') ++i;
    if (i >= line.size()) break;
    const std::size_t eq = line.find('=', i);
    if (eq == std::string::npos) { ADD_FAILURE() << "no '=' in: " << line; break; }
    std::string key = line.substr(i, eq - i);
    std::string value;
    i = eq + 1;
    if (i < line.size() && line[i] == '"') {
      ++i;
      while (i < line.size() && line[i] != '"') {
        if (line[i] == '\\' && i + 1 < line.size()) {
          const char next = line[i + 1];
          value.push_back(next == 'n' ? '\n'
                          : next == 'r' ? '\r'
                          : next == 't' ? '\t'
                                        : next);
          i += 2;
        } else {
          value.push_back(line[i++]);
        }
      }
      EXPECT_LT(i, line.size()) << "unterminated quote in: " << line;
      ++i;  // closing quote
    } else {
      const std::size_t end = line.find(' ', i);
      value = line.substr(i, end == std::string::npos ? end : end - i);
      i = end == std::string::npos ? line.size() : end;
    }
    pairs.emplace_back(std::move(key), std::move(value));
  }
  return pairs;
}

// Satellite: hostile field values — spaces, '=', quotes, lone backslashes,
// CR/LF/tab — must render to a line the scanner above maps back to exactly
// the original (key, value) sequence.
TEST(EventLog, LogfmtValuesRoundTripUnambiguously) {
  const std::vector<std::pair<std::string, std::string>> hostile = {
      {"plain", "bare-token"},
      {"spaced", "gone dark"},
      {"equals", "a=b=c"},
      {"quoted", "say \"hi\""},
      {"backslash", "C:\\mantra\\logs"},  // must trigger quoting by itself
      {"newline", "line1\nline2"},
      {"carriage", "line1\r\nline2"},
      {"tab", "col1\tcol2"},
      {"empty", ""},
      {"mixed", "a \"b\" = \\ \n end"},
  };
  EventLog log(/*enabled=*/true, /*capacity=*/8);
  log.log(EventLevel::info, "hostile", sim::TimePoint::from_ms(1000), hostile);

  const std::string text = log.logfmt();
  ASSERT_FALSE(text.empty());
  // One event, one line: every embedded newline must be escaped.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 1);

  const auto pairs = parse_logfmt_line(text.substr(0, text.size() - 1));
  // sim_ts, level, event, then the fields in order.
  ASSERT_EQ(pairs.size(), 3 + hostile.size());
  EXPECT_EQ(pairs[0], (std::pair<std::string, std::string>{"sim_ts", "1000"}));
  EXPECT_EQ(pairs[2], (std::pair<std::string, std::string>{"event", "hostile"}));
  for (std::size_t i = 0; i < hostile.size(); ++i) {
    EXPECT_EQ(pairs[3 + i], hostile[i]) << "field #" << i;
  }
}

TEST(EventLog, DisabledLogRecordsNothing) {
  EventLog log(/*enabled=*/false);
  log.log(EventLevel::error, "boom", sim::TimePoint::start());
  EXPECT_EQ(log.size(), 0u);
  EXPECT_EQ(log.total_logged(), 0u);
}

// Satellite: min_event_level filters at the door — a filtered event consumes
// no ring capacity and bumps NEITHER total_logged() nor dropped(). Only ring
// overflow counts as a drop.
TEST(EventLog, MinLevelFiltersWithoutCountingDrops) {
  EventLog log(/*enabled=*/true, /*capacity=*/4, EventLevel::warn);
  log.log(EventLevel::debug, "noise", sim::TimePoint::from_ms(0));
  log.log(EventLevel::info, "still_noise", sim::TimePoint::from_ms(1000));
  EXPECT_EQ(log.size(), 0u);
  EXPECT_EQ(log.total_logged(), 0u);
  EXPECT_EQ(log.dropped(), 0u);

  log.log(EventLevel::warn, "kept", sim::TimePoint::from_ms(2000));
  log.log(EventLevel::error, "kept_too", sim::TimePoint::from_ms(3000));
  EXPECT_EQ(log.size(), 2u);
  EXPECT_EQ(log.total_logged(), 2u);
  EXPECT_EQ(log.dropped(), 0u);
  // Sequence numbers stay dense over the kept events: the filter never
  // consumed a seq, so samplers keying on seq see no gaps.
  const std::vector<TelemetryEvent> events = log.snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].seq + 1, events[1].seq);

  // Ring overflow still counts as dropped, interleaved with filtering.
  for (int i = 0; i < 6; ++i) {
    log.log(EventLevel::debug, "noise", sim::TimePoint::from_ms(9000));
    log.log(EventLevel::warn, "w", sim::TimePoint::from_ms(9000));
  }
  EXPECT_EQ(log.size(), 4u);
  EXPECT_EQ(log.total_logged(), 8u);
  EXPECT_EQ(log.dropped(), 4u);
}

TEST(Telemetry, ConfigMinEventLevelReachesTheLog) {
  TelemetryConfig config;
  config.enabled = true;
  config.min_event_level = EventLevel::error;
  Telemetry telemetry(config);
  telemetry.events().log(EventLevel::warn, "below", sim::TimePoint::start());
  telemetry.events().log(EventLevel::error, "kept", sim::TimePoint::start());
  EXPECT_EQ(telemetry.events().size(), 1u);
  EXPECT_EQ(telemetry.events().total_logged(), 1u);
  EXPECT_EQ(telemetry.events().dropped(), 0u);
}

// --- Telemetry bundle --------------------------------------------------------

TEST(Telemetry, NoopBundleIsSharedAndDisabled) {
  Telemetry& noop = Telemetry::noop();
  EXPECT_FALSE(noop.enabled());
  EXPECT_EQ(&noop, &Telemetry::noop());
  noop.metrics().counter("c").inc();
  EXPECT_EQ(noop.metrics().counter_total("c"), 0u);
}

TEST(Telemetry, WritesMetricsAndTraceFiles) {
  TelemetryConfig config;
  config.enabled = true;
  Telemetry telemetry(config);
  telemetry.metrics().counter("mantra_cycles_total").inc(3);
  { Tracer::Scope scope = telemetry.tracer().span("cycle", "cycle", sim::TimePoint::start()); }

  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / "mantra_telemetry_files";
  std::filesystem::create_directories(dir);
  const std::string prom = (dir / "metrics.prom").string();
  const std::string trace = (dir / "trace.json").string();
  ASSERT_TRUE(telemetry.write_metrics_prom(prom));
  ASSERT_TRUE(telemetry.write_trace_json(trace));

  std::ifstream prom_in(prom);
  std::stringstream prom_text;
  prom_text << prom_in.rdbuf();
  EXPECT_NE(prom_text.str().find("mantra_cycles_total 3"), std::string::npos);
  EXPECT_FALSE(telemetry.write_metrics_prom((dir / "no/such/dir/x").string()));
  std::filesystem::remove_all(dir);
}

// --- Thread safety (run under the tsan preset) -------------------------------

TEST(TelemetryConcurrency, PoolHammerOnSharedSinks) {
  TelemetryConfig config;
  config.enabled = true;
  config.max_spans = 1024;  // force drops under contention too
  config.max_events = 256;
  Telemetry telemetry(config);

  parallel::ThreadPool pool(8);
  pool.set_telemetry(&telemetry);
  constexpr int kTasks = 64;
  constexpr int kIterations = 200;
  std::vector<std::function<void()>> tasks;
  tasks.reserve(kTasks);
  for (int t = 0; t < kTasks; ++t) {
    tasks.emplace_back([&telemetry, t] {
      const std::string target = "target-" + std::to_string(t % 4);
      Counter& cached =
          telemetry.metrics().counter("hammer_cached_total", {{"target", target}});
      for (int i = 0; i < kIterations; ++i) {
        cached.inc();
        telemetry.metrics().counter("hammer_total").inc();
        telemetry.metrics().gauge("hammer_gauge").add(1.0);
        telemetry.metrics()
            .histogram("hammer_lat", {{"target", target}})
            .observe(static_cast<double>(i % 7));
        Tracer::Scope scope =
            telemetry.tracer().span("hammer", "test", sim::TimePoint::start());
        scope.arg("target", target);
        if (i % 10 == 0) {
          telemetry.events().log(EventLevel::debug, "hammer_tick",
                                 sim::TimePoint::from_ms(i),
                                 {{"target", target}});
        }
      }
    });
  }
  parallel::run_all(&pool, std::move(tasks));

  const std::uint64_t expected = static_cast<std::uint64_t>(kTasks) * kIterations;
  EXPECT_EQ(telemetry.metrics().counter_total("hammer_total"), expected);
  EXPECT_EQ(telemetry.metrics().counter_total("hammer_cached_total"), expected);
  EXPECT_DOUBLE_EQ(telemetry.metrics().gauge("hammer_gauge").value(),
                   static_cast<double>(expected));
  const Histogram* lat =
      telemetry.metrics().find_histogram("hammer_lat", {{"target", "target-0"}});
  ASSERT_NE(lat, nullptr);
  EXPECT_GT(lat->count(), 0u);
  // Every span was either stored or counted as dropped — none lost.
  EXPECT_EQ(telemetry.tracer().span_count() + telemetry.tracer().dropped(),
            expected);
  EXPECT_GT(telemetry.events().total_logged(), 0u);
  // The expositions render without tearing while values are stable.
  EXPECT_FALSE(telemetry.metrics().prometheus_text().empty());
  EXPECT_FALSE(telemetry.tracer().chrome_trace_json().empty());
}

// --- Determinism: telemetry never feeds back into results --------------------

std::string read_file_bytes(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TransportFactory faulty_factory() {
  return [](const std::string& name) -> std::unique_ptr<Transport> {
    FaultProfile profile;
    if (name == "ucsb-gw") profile = FaultProfile::command_failure_rate(0.3);
    return std::make_unique<FaultInjectingTransport>(
        per_target_seed(0x7e1e3e7 , name), profile);
  };
}

TEST(TelemetryDeterminism, ResultsSeriesAndArchivesIdenticalOnOrOff) {
  workload::ScenarioConfig scenario_config;
  scenario_config.seed = 21;
  scenario_config.domains = 4;
  scenario_config.hosts_per_domain = 6;
  scenario_config.dvmrp_prefixes_per_domain = 6;
  scenario_config.report_loss = 0.02;
  scenario_config.timer_scale = 1;
  scenario_config.full_timers = true;
  scenario_config.generator.session_arrivals_per_hour = 40.0;
  scenario_config.generator.bursts_per_day = 0.0;
  workload::FixwScenario scenario(scenario_config);
  scenario.start();

  const std::filesystem::path base =
      std::filesystem::path(::testing::TempDir()) / "mantra_telemetry_equiv";
  std::filesystem::remove_all(base);
  const std::string off_dir = (base / "off").string();
  const std::string on_dir = (base / "on").string();

  const auto make_monitor = [&](bool telemetry_on, const std::string& dir) {
    MantraConfig config;
    config.cycle = sim::Duration::minutes(15);
    config.retry.max_attempts = 2;
    config.worker_threads = 4;
    config.archive_dir = dir;
    config.telemetry.enabled = telemetry_on;
    auto monitor = std::make_unique<Mantra>(scenario.engine(), config,
                                            faulty_factory());
    monitor->add_target(scenario.network().router(scenario.fixw_node()));
    monitor->add_target(scenario.network().router(scenario.ucsb_node()));
    monitor->start();
    return monitor;
  };
  auto off = make_monitor(false, off_dir);
  auto on = make_monitor(true, on_dir);
  scenario.engine().run_until(scenario.engine().now() + sim::Duration::hours(4));

  // The telemetry-on run actually observed the cycle: counters, spans and
  // capture-latency samples all populated.
  EXPECT_FALSE(off->telemetry().enabled());
  ASSERT_TRUE(on->telemetry().enabled());
  const MetricsRegistry& metrics = on->telemetry().metrics();
  EXPECT_EQ(metrics.counter_total("mantra_cycles_total"), 16u);
  EXPECT_GT(metrics.counter_total("mantra_cycles_recorded_total"), 0u);
  EXPECT_GT(metrics.counter_total("mantra_transport_commands_total"), 0u);
  EXPECT_GT(metrics.counter_total("mantra_capture_status_total"), 0u);
  EXPECT_GT(metrics.counter_total("mantra_archive_records_total"), 0u);
  EXPECT_GT(metrics.counter_total("mantra_pool_tasks_total"), 0u);
  const Histogram* latency = metrics.find_histogram(
      "mantra_capture_latency_seconds", {{"target", "fixw"}});
  ASSERT_NE(latency, nullptr);
  EXPECT_GT(latency->count(), 0u);
  EXPECT_GT(on->telemetry().tracer().span_count(), 0u);

  // The invariant: every monitored-path output is byte-identical.
  for (const std::string& name : off->target_names()) {
    EXPECT_EQ(off->target_view(name).results(), on->target_view(name).results())
        << "target " << name;
    const auto sessions = [](const CycleResult& r) {
      return static_cast<double>(r.usage.sessions);
    };
    EXPECT_EQ(off->series(name, "sessions", sessions).to_csv(),
              on->series(name, "sessions", sessions).to_csv())
        << "target " << name;
  }
  EXPECT_EQ(off->overview().to_csv(), on->overview().to_csv());
  EXPECT_EQ(off->status().to_table().to_csv(), on->status().to_table().to_csv());

  const std::vector<std::string> names = off->target_names();
  off.reset();
  on.reset();
  for (const std::string& name : names) {
    const std::string off_bytes =
        read_file_bytes(std::filesystem::path(off_dir) / (name + ".marc"));
    const std::string on_bytes =
        read_file_bytes(std::filesystem::path(on_dir) / (name + ".marc"));
    EXPECT_FALSE(off_bytes.empty()) << "target " << name;
    EXPECT_EQ(off_bytes, on_bytes) << "target " << name;
  }
  std::filesystem::remove_all(base);
}

// --- TelemetryStage ----------------------------------------------------------

// The correlation layer: flush stamps the deterministic tid and a
// c<cycle>/<target>[/<command>/a<attempt>] id onto every staged span and
// event — the id leads the span args / event fields — and forwards in
// staged order. Nothing reaches the shared sinks before the flush.
TEST(TelemetryStage, FlushStampsTidAndCorrelationIds) {
  TelemetryConfig config;
  config.enabled = true;
  Telemetry telemetry(config);
  TelemetryStage stage(&telemetry);

  {
    TelemetryStage::Span span =
        stage.span("capture", "collect", sim::TimePoint::from_ms(60'000));
    span.set_context("show ip dvmrp route", /*attempt=*/2);
    span.arg("status", "ok");
  }
  { TelemetryStage::Span span = stage.span("parse", "process",
                                           sim::TimePoint::from_ms(60'000)); }
  stage.log(EventLevel::warn, "capture_failed", sim::TimePoint::from_ms(60'000),
            {{"target", "fixw"}}, "show ip mroute", /*attempt=*/1);
  stage.log(EventLevel::info, "target_recovered",
            sim::TimePoint::from_ms(60'000), {{"target", "fixw"}});
  EXPECT_EQ(stage.staged_spans(), 2u);
  EXPECT_EQ(stage.staged_events(), 2u);
  EXPECT_EQ(telemetry.tracer().span_count(), 0u);  // nothing leaked pre-join
  EXPECT_EQ(telemetry.events().size(), 0u);

  stage.flush(/*cycle_seq=*/7, "fixw", /*tid=*/3);
  EXPECT_EQ(stage.staged_spans(), 0u);
  EXPECT_EQ(stage.staged_events(), 0u);

  const std::vector<TraceSpan> spans = telemetry.tracer().snapshot();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].tid, 3u);
  ASSERT_FALSE(spans[0].args.empty());
  // The id leads the args; command context scopes it to the attempt.
  EXPECT_EQ(spans[0].args[0],
            (std::pair<std::string, std::string>{
                "corr", correlation_id(7, "fixw", "show ip dvmrp route", 2)}));
  EXPECT_EQ(spans[0].args[1].first, "status");
  // A span without command context gets the cycle-level id.
  EXPECT_EQ(spans[1].args[0],
            (std::pair<std::string, std::string>{"corr",
                                                 correlation_id(7, "fixw")}));

  const std::vector<TelemetryEvent> events = telemetry.events().snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].fields[0],
            (std::pair<std::string, std::string>{
                "corr", correlation_id(7, "fixw", "show ip mroute", 1)}));
  EXPECT_EQ(events[1].fields[0],
            (std::pair<std::string, std::string>{"corr", "c7/fixw"}));
  EXPECT_EQ(events[0].fields[1].first, "target");
}

// --- Determinism: ordering is worker_threads-invariant -----------------------

// Tentpole invariant: spans and events are staged per target during the
// cycle and flushed post-join in target-name order with deterministic tids
// and correlation ids, so the logfmt event log and the Chrome trace export
// are byte-identical whether the cycle ran sequentially or on a pool.
// (Metrics are deliberately out of scope: pool gauges like queue depth
// legitimately differ with worker count.)
TEST(TelemetryOrdering, SequentialAndPooledRunsEmitIdenticalBytes) {
  workload::ScenarioConfig scenario_config;
  scenario_config.seed = 21;
  scenario_config.domains = 4;
  scenario_config.hosts_per_domain = 6;
  scenario_config.dvmrp_prefixes_per_domain = 6;
  scenario_config.report_loss = 0.02;
  scenario_config.timer_scale = 1;
  scenario_config.full_timers = true;
  scenario_config.generator.session_arrivals_per_hour = 40.0;
  scenario_config.generator.bursts_per_day = 0.0;
  workload::FixwScenario scenario(scenario_config);
  scenario.start();

  const auto make_monitor = [&](std::size_t workers) {
    MantraConfig config;
    config.cycle = sim::Duration::minutes(15);
    config.retry.max_attempts = 2;
    config.worker_threads = workers;
    config.telemetry.enabled = true;
    auto monitor = std::make_unique<Mantra>(scenario.engine(), config,
                                            faulty_factory());
    monitor->add_target(scenario.network().router(scenario.fixw_node()));
    monitor->add_target(scenario.network().router(scenario.ucsb_node()));
    monitor->start();
    return monitor;
  };
  const auto sequential = make_monitor(0);
  const auto pooled = make_monitor(4);
  scenario.engine().run_until(scenario.engine().now() + sim::Duration::hours(4));

  const std::string sequential_trace =
      sequential->telemetry().tracer().chrome_trace_json();
  const std::string pooled_trace =
      pooled->telemetry().tracer().chrome_trace_json();
  ASSERT_GT(sequential->telemetry().tracer().span_count(), 0u);
  EXPECT_EQ(sequential_trace, pooled_trace);
  EXPECT_EQ(sequential->telemetry().events().logfmt(),
            pooled->telemetry().events().logfmt());

  // The shared export carries the correlation layer: every capture span's
  // first arg is a c<cycle>/<target>/<command>/a<attempt> id, and the
  // flush assigned stable per-target lanes (tid 1 = driver, 2+ = targets).
  EXPECT_NE(sequential_trace.find("\"corr\": \"c1/fixw/"), std::string::npos);
  EXPECT_NE(sequential_trace.find("{\"ph\": \"M\", \"pid\": 1, \"tid\": 1, "
                                  "\"name\": \"thread_name\", "
                                  "\"args\": {\"name\": \"driver\"}}"),
            std::string::npos);
  EXPECT_NE(sequential_trace.find("{\"ph\": \"M\", \"pid\": 1, \"tid\": 2, "
                                  "\"name\": \"thread_name\", "
                                  "\"args\": {\"name\": \"fixw\"}}"),
            std::string::npos);
}

}  // namespace
}  // namespace mantra::core
