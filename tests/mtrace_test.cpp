#include <gtest/gtest.h>

#include "router/mtrace.hpp"
#include "workload/scenario.hpp"

namespace mantra::router {
namespace {

const net::Ipv4Address kGroup{224, 2, 0, 77};

class MtraceTest : public ::testing::Test {
 protected:
  MtraceTest() : scenario_(make_config()) {
    scenario_.start();
    scenario_.engine().run_until(sim::TimePoint::start() + sim::Duration::minutes(5));
  }

  static workload::ScenarioConfig make_config() {
    workload::ScenarioConfig config;
    config.seed = 5;
    config.domains = 4;
    config.hosts_per_domain = 3;
    config.dvmrp_prefixes_per_domain = 2;
    config.report_loss = 0.0;
    config.timer_scale = 1;
    config.full_timers = true;
    config.generator.session_arrivals_per_hour = 0.0;
    config.generator.bursts_per_day = 0.0;
    return config;
  }

  net::NodeId host(int domain, int index) {
    const std::string name =
        (domain == 0 ? std::string("ucsb-gw") : "bdr" + std::to_string(domain)) +
        "-h" + std::to_string(index);
    for (const net::Node& node : scenario_.topology().nodes()) {
      if (node.name == name) return node.id;
    }
    return net::kInvalidNode;
  }

  workload::FixwScenario scenario_;
};

TEST_F(MtraceTest, TracesCrossDomainReversePath) {
  const net::NodeId sender = host(1, 0);
  const net::NodeId receiver = host(2, 0);
  scenario_.network().host_join(receiver, kGroup);
  scenario_.network().flow_start(sender, kGroup, 100.0, MfcMode::kDense);
  scenario_.engine().run_until(scenario_.engine().now() + sim::Duration::seconds(30));

  const MtraceResult result = mtrace(
      scenario_.network(), receiver,
      scenario_.network().host_address(sender), kGroup);
  EXPECT_TRUE(result.complete()) << result.to_string();
  // Path: receiver's border (bdr2) -> fixw -> sender's border (bdr1).
  ASSERT_EQ(result.hops.size(), 3u);
  EXPECT_EQ(result.hops[0].router_name, "bdr2");
  EXPECT_EQ(result.hops[1].router_name, "fixw");
  EXPECT_EQ(result.hops[2].router_name, "bdr1");
  // All hops on the live tree have forwarding state at the flow rate.
  for (const MtraceHop& hop : result.hops) {
    EXPECT_TRUE(hop.have_state) << hop.router_name;
    EXPECT_DOUBLE_EQ(hop.rate_kbps, 100.0) << hop.router_name;
    EXPECT_EQ(hop.protocol, "DVMRP");
  }
}

TEST_F(MtraceTest, ReportsPrunedHopsForUnwantedTraffic) {
  const net::NodeId sender = host(1, 1);
  const net::NodeId bystander = host(3, 0);  // never joins
  scenario_.network().flow_start(sender, kGroup, 64.0, MfcMode::kDense);
  scenario_.engine().run_until(scenario_.engine().now() + sim::Duration::seconds(30));

  const MtraceResult result = mtrace(
      scenario_.network(), bystander,
      scenario_.network().host_address(sender), kGroup);
  EXPECT_TRUE(result.complete());
  ASSERT_FALSE(result.hops.empty());
  // The bystander's border router pruned itself off the tree.
  EXPECT_TRUE(result.hops[0].have_state);
  EXPECT_TRUE(result.hops[0].pruned);
}

TEST_F(MtraceTest, SparsePlaneUsesPimRpf) {
  const net::NodeId sender = host(1, 2);
  const net::NodeId receiver = host(2, 2);
  scenario_.network().set_group_plane(kGroup, MfcMode::kSparse);
  scenario_.network().host_join(receiver, kGroup);
  scenario_.engine().run_until(scenario_.engine().now() + sim::Duration::seconds(5));
  scenario_.network().flow_start(sender, kGroup, 150.0, MfcMode::kSparse);
  scenario_.engine().run_until(scenario_.engine().now() + sim::Duration::minutes(1));

  const MtraceResult result = mtrace(
      scenario_.network(), receiver,
      scenario_.network().host_address(sender), kGroup);
  EXPECT_TRUE(result.complete());
  ASSERT_GE(result.hops.size(), 2u);
  EXPECT_EQ(result.hops[0].protocol, "PIM");
}

TEST_F(MtraceTest, NoRouteReportedWhenSourceUnknown) {
  const net::NodeId receiver = host(2, 0);
  const MtraceResult result =
      mtrace(scenario_.network(), receiver,
             net::Ipv4Address(203, 0, 113, 5),  // outside every DVMRP route
             kGroup);
  EXPECT_EQ(result.outcome, MtraceOutcome::kNoRoute);
  EXPECT_FALSE(result.complete());
}

TEST_F(MtraceTest, RendersClassicLayout) {
  const net::NodeId sender = host(1, 0);
  const net::NodeId receiver = host(2, 0);
  scenario_.network().host_join(receiver, kGroup);
  scenario_.network().flow_start(sender, kGroup, 100.0, MfcMode::kDense);
  scenario_.engine().run_until(scenario_.engine().now() + sim::Duration::seconds(30));
  const MtraceResult result = mtrace(
      scenario_.network(), receiver,
      scenario_.network().host_address(sender), kGroup);
  const std::string text = result.to_string();
  EXPECT_NE(text.find("Querying reverse path"), std::string::npos);
  EXPECT_NE(text.find("-0  bdr2"), std::string::npos);
  EXPECT_NE(text.find("reached source network"), std::string::npos);
}

}  // namespace
}  // namespace mantra::router
