#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "msdp/msdp.hpp"

namespace mantra::msdp {
namespace {

const net::Ipv4Address kSelfRp{10, 0, 0, 1};
const net::Ipv4Address kPeerA{10, 0, 0, 2};
const net::Ipv4Address kPeerB{10, 0, 0, 3};
const net::Ipv4Address kRemoteRp{10, 0, 0, 9};
const net::Ipv4Address kSource{10, 7, 1, 5};
const net::Ipv4Address kGroup{224, 2, 0, 5};

class MsdpTest : public ::testing::Test {
 protected:
  std::unique_ptr<Msdp> make(Config config = default_config()) {
    auto msdp = std::make_unique<Msdp>(engine_, kSelfRp, std::move(config));
    msdp->set_send_sa([this](net::Ipv4Address peer, const SourceActive& sa) {
      sent_[peer].push_back(sa);
    });
    msdp->set_rpf_peer([this](net::Ipv4Address) { return rpf_peer_; });
    msdp->set_sa_learned([this](net::Ipv4Address s, net::Ipv4Address g,
                                net::Ipv4Address rp) {
      learned_.push_back({s, g, rp});
    });
    msdp->set_sa_expired([this](net::Ipv4Address s, net::Ipv4Address g) {
      expired_.push_back({s, g});
    });
    return msdp;
  }

  static Config default_config() {
    Config config;
    config.peers = {{kPeerA, 0}, {kPeerB, 0}};
    config.timers_enabled = false;
    return config;
  }

  sim::Engine engine_;
  net::Ipv4Address rpf_peer_ = kPeerA;
  std::map<net::Ipv4Address, std::vector<SourceActive>> sent_;
  struct Learned {
    net::Ipv4Address source, group, rp;
  };
  std::vector<Learned> learned_;
  std::vector<std::pair<net::Ipv4Address, net::Ipv4Address>> expired_;
};

TEST_F(MsdpTest, OriginateCachesAndFloodsToAllPeers) {
  auto msdp = make();
  msdp->originate(kSource, kGroup);
  EXPECT_TRUE(msdp->has_sa(kSource, kGroup));
  ASSERT_EQ(sent_[kPeerA].size(), 1u);
  ASSERT_EQ(sent_[kPeerB].size(), 1u);
  EXPECT_EQ(sent_[kPeerA][0].origin_rp, kSelfRp);
}

TEST_F(MsdpTest, AcceptsSaFromRpfPeerAndFloodsOnward) {
  auto msdp = make();
  SourceActive sa{kPeerA, kRemoteRp, kSource, kGroup};
  msdp->on_source_active(sa);
  EXPECT_TRUE(msdp->has_sa(kSource, kGroup));
  ASSERT_EQ(learned_.size(), 1u);
  EXPECT_EQ(learned_[0].rp, kRemoteRp);
  // Flooded to B, not back to A.
  EXPECT_TRUE(sent_[kPeerA].empty());
  ASSERT_EQ(sent_[kPeerB].size(), 1u);
  EXPECT_EQ(sent_[kPeerB][0].sender, kSelfRp);  // re-sent under our identity
}

TEST_F(MsdpTest, RejectsSaFailingPeerRpf) {
  auto msdp = make();
  rpf_peer_ = kPeerB;  // the legitimate path is via B
  SourceActive sa{kPeerA, kRemoteRp, kSource, kGroup};
  msdp->on_source_active(sa);
  EXPECT_FALSE(msdp->has_sa(kSource, kGroup));
  EXPECT_EQ(msdp->sa_rpf_failures(), 1u);
  EXPECT_TRUE(learned_.empty());
}

TEST_F(MsdpTest, DuplicateSaRefreshesWithoutRelearning) {
  auto msdp = make();
  SourceActive sa{kPeerA, kRemoteRp, kSource, kGroup};
  msdp->on_source_active(sa);
  msdp->on_source_active(sa);
  EXPECT_EQ(learned_.size(), 1u);
  EXPECT_EQ(msdp->cache_size(), 1u);
}

TEST_F(MsdpTest, MeshGroupMemberBypassesRpfAndIsNotRefloodedToMesh) {
  Config config;
  config.peers = {{kPeerA, 7}, {kPeerB, 7}};
  config.timers_enabled = false;
  auto msdp = make(std::move(config));
  rpf_peer_ = net::Ipv4Address(1, 2, 3, 4);  // would fail normal peer-RPF
  SourceActive sa{kPeerA, kRemoteRp, kSource, kGroup};
  msdp->on_source_active(sa);
  EXPECT_TRUE(msdp->has_sa(kSource, kGroup));
  // Not re-flooded to the other member of the same mesh group.
  EXPECT_TRUE(sent_[kPeerB].empty());
}

TEST_F(MsdpTest, ExpiryRemovesStaleEntriesAndNotifies) {
  auto msdp = make();
  SourceActive sa{kPeerA, kRemoteRp, kSource, kGroup};
  msdp->on_source_active(sa);
  engine_.run_until(sim::TimePoint::start() + msdp->config().sa_cache_timeout +
                    sim::Duration::seconds(1));
  msdp->expire_now();
  EXPECT_FALSE(msdp->has_sa(kSource, kGroup));
  ASSERT_EQ(expired_.size(), 1u);
}

TEST_F(MsdpTest, LocallyOriginatedEntriesDoNotExpire) {
  auto msdp = make();
  msdp->originate(kSource, kGroup);
  engine_.run_until(sim::TimePoint::start() + msdp->config().sa_cache_timeout * std::int64_t{3});
  msdp->expire_now();
  EXPECT_TRUE(msdp->has_sa(kSource, kGroup));
}

TEST_F(MsdpTest, StopOriginatingLetsEntryAgeOut) {
  auto msdp = make();
  msdp->originate(kSource, kGroup);
  msdp->stop_originating(kSource, kGroup);
  engine_.run_until(sim::TimePoint::start() + msdp->config().sa_cache_timeout +
                    sim::Duration::seconds(1));
  msdp->expire_now();
  EXPECT_FALSE(msdp->has_sa(kSource, kGroup));
}

TEST_F(MsdpTest, FlushRemovesImmediately) {
  auto msdp = make();
  SourceActive sa{kPeerA, kRemoteRp, kSource, kGroup};
  msdp->on_source_active(sa);
  msdp->flush(kSource, kGroup);
  EXPECT_FALSE(msdp->has_sa(kSource, kGroup));
  EXPECT_EQ(expired_.size(), 1u);
}

TEST_F(MsdpTest, AdvertiseNowRefloodsOriginatedSas) {
  auto msdp = make();
  msdp->originate(kSource, kGroup);
  const auto before = sent_[kPeerA].size();
  msdp->advertise_now();
  EXPECT_EQ(sent_[kPeerA].size(), before + 1);
}

TEST_F(MsdpTest, PeriodicTimersReadvertise) {
  Config config = default_config();
  config.timers_enabled = true;
  auto msdp = make(std::move(config));
  msdp->start();
  msdp->originate(kSource, kGroup);
  engine_.run_until(sim::TimePoint::start() +
                    msdp->config().sa_advertisement_interval * std::int64_t{2} +
                    sim::Duration::seconds(5));
  EXPECT_GE(sent_[kPeerA].size(), 3u);  // originate + 2 periodic refreshes
}

TEST_F(MsdpTest, SaCacheListsEntries) {
  auto msdp = make();
  msdp->originate(kSource, kGroup);
  SourceActive sa{kPeerA, kRemoteRp, net::Ipv4Address(10, 8, 0, 1), kGroup};
  msdp->on_source_active(sa);
  const auto cache = msdp->sa_cache();
  ASSERT_EQ(cache.size(), 2u);
}

}  // namespace
}  // namespace mantra::msdp
