#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "dvmrp/dvmrp.hpp"

namespace mantra::dvmrp {
namespace {

const net::Ipv4Address kSelf{10, 0, 0, 1};
const net::Ipv4Address kPeerA{10, 0, 0, 2};
const net::Ipv4Address kPeerB{10, 0, 0, 3};

net::Prefix P(const char* text) { return *net::Prefix::parse(text); }

/// Harness capturing outgoing reports per interface.
class DvmrpTest : public ::testing::Test {
 protected:
  std::unique_ptr<Dvmrp> make(Config config) {
    auto instance = std::make_unique<Dvmrp>(engine_, kSelf, std::move(config));
    instance->set_send_report(
        [this](net::IfIndex ifindex, const RouteReport& report) {
          sent_[ifindex].push_back(report);
        });
    return instance;
  }

  static Config two_interface_config() {
    Config config;
    config.interfaces = {{0, 1}, {1, 1}};
    config.originated = {{P("10.5.0.0/16"), 1}};
    config.timers_enabled = false;
    return config;
  }

  RouteReport report_from(net::Ipv4Address sender,
                          std::vector<ReportedRoute> routes) {
    RouteReport report;
    report.sender = sender;
    report.routes = std::move(routes);
    return report;
  }

  sim::Engine engine_;
  std::map<net::IfIndex, std::vector<RouteReport>> sent_;
};

// --- RouteTable ------------------------------------------------------------

TEST(RouteTable, UpsertTracksChanges) {
  sim::Engine engine;
  RouteTable table;
  Route& r1 = table.upsert(P("10.1.0.0/16"), 3, net::Ipv4Address{10, 0, 0, 9}, 1,
                           false, engine.now());
  EXPECT_EQ(r1.flap_count, 0u);
  // Refresh with identical attributes: no flap.
  Route& r2 = table.upsert(P("10.1.0.0/16"), 3, net::Ipv4Address{10, 0, 0, 9}, 1,
                           false, engine.now());
  EXPECT_EQ(r2.flap_count, 0u);
  // Metric change: flap.
  Route& r3 = table.upsert(P("10.1.0.0/16"), 5, net::Ipv4Address{10, 0, 0, 9}, 1,
                           false, engine.now());
  EXPECT_EQ(r3.flap_count, 1u);
}

TEST(RouteTable, RpfLookupUsesLongestValidMatch) {
  sim::Engine engine;
  RouteTable table;
  table.upsert(P("10.0.0.0/8"), 2, kPeerA, 0, false, engine.now());
  table.upsert(P("10.1.0.0/16"), 3, kPeerB, 1, false, engine.now());
  const Route* route = table.rpf_lookup(net::Ipv4Address(10, 1, 2, 3));
  ASSERT_NE(route, nullptr);
  EXPECT_EQ(route->upstream, kPeerB);

  // Hold-down routes are not usable for RPF.
  table.find(P("10.1.0.0/16"))->state = RouteState::kHolddown;
  const Route* fallback = table.rpf_lookup(net::Ipv4Address(10, 1, 2, 3));
  ASSERT_NE(fallback, nullptr);
  EXPECT_EQ(fallback->upstream, kPeerA);
}

// --- Dvmrp protocol ---------------------------------------------------------

TEST_F(DvmrpTest, StartInstallsOriginatedRoutes) {
  auto dvmrp = make(two_interface_config());
  dvmrp->start();
  EXPECT_EQ(dvmrp->routes().size(), 1u);
  const Route* route = dvmrp->routes().find(P("10.5.0.0/16"));
  ASSERT_NE(route, nullptr);
  EXPECT_TRUE(route->local);
  EXPECT_EQ(route->metric, 1);
}

TEST_F(DvmrpTest, AdoptsAdvertisedRouteWithMetricIncrement) {
  auto dvmrp = make(two_interface_config());
  dvmrp->start();
  dvmrp->on_report(0, kPeerA, report_from(kPeerA, {{P("10.9.0.0/16"), 4}}));
  const Route* route = dvmrp->routes().find(P("10.9.0.0/16"));
  ASSERT_NE(route, nullptr);
  EXPECT_EQ(route->metric, 5);  // 4 + interface metric 1
  EXPECT_EQ(route->upstream, kPeerA);
  EXPECT_EQ(route->ifindex, 0u);
}

TEST_F(DvmrpTest, PrefersLowerMetricThenLowerAddress) {
  auto dvmrp = make(two_interface_config());
  dvmrp->start();
  dvmrp->on_report(0, kPeerB, report_from(kPeerB, {{P("10.9.0.0/16"), 6}}));
  dvmrp->on_report(1, kPeerA, report_from(kPeerA, {{P("10.9.0.0/16"), 4}}));
  EXPECT_EQ(dvmrp->routes().find(P("10.9.0.0/16"))->upstream, kPeerA);

  // Equal metric from a lower address: tiebreak switches upstream.
  auto tie = make(two_interface_config());
  tie->start();
  tie->on_report(0, kPeerB, report_from(kPeerB, {{P("10.9.0.0/16"), 4}}));
  tie->on_report(1, kPeerA, report_from(kPeerA, {{P("10.9.0.0/16"), 4}}));
  EXPECT_EQ(tie->routes().find(P("10.9.0.0/16"))->upstream, kPeerA);
}

TEST_F(DvmrpTest, WorseMetricFromCurrentUpstreamIsAccepted) {
  // Distance-vector rule: the current upstream's word is final.
  auto dvmrp = make(two_interface_config());
  dvmrp->start();
  dvmrp->on_report(0, kPeerA, report_from(kPeerA, {{P("10.9.0.0/16"), 4}}));
  dvmrp->on_report(0, kPeerA, report_from(kPeerA, {{P("10.9.0.0/16"), 9}}));
  EXPECT_EQ(dvmrp->routes().find(P("10.9.0.0/16"))->metric, 10);
}

TEST_F(DvmrpTest, WorseMetricFromOtherNeighborIgnored) {
  auto dvmrp = make(two_interface_config());
  dvmrp->start();
  dvmrp->on_report(0, kPeerA, report_from(kPeerA, {{P("10.9.0.0/16"), 4}}));
  dvmrp->on_report(1, kPeerB, report_from(kPeerB, {{P("10.9.0.0/16"), 8}}));
  EXPECT_EQ(dvmrp->routes().find(P("10.9.0.0/16"))->upstream, kPeerA);
  EXPECT_EQ(dvmrp->routes().find(P("10.9.0.0/16"))->metric, 5);
}

TEST_F(DvmrpTest, PoisonReverseMarksDependent) {
  auto dvmrp = make(two_interface_config());
  dvmrp->start();
  // Peer B poisons our local net: it depends on us.
  dvmrp->on_report(1, kPeerB,
                  report_from(kPeerB, {{P("10.5.0.0/16"), 1 + kInfinity}}));
  const Route* route = dvmrp->routes().find(P("10.5.0.0/16"));
  ASSERT_NE(route, nullptr);
  EXPECT_EQ(route->dependents.count(kPeerB), 1u);
  // A later reachable advert clears the dependency.
  dvmrp->on_report(1, kPeerB, report_from(kPeerB, {{P("10.5.0.0/16"), 3}}));
  EXPECT_EQ(dvmrp->routes().find(P("10.5.0.0/16"))->dependents.count(kPeerB), 0u);
}

TEST_F(DvmrpTest, OutgoingReportsPoisonReverseTowardUpstream) {
  auto dvmrp = make(two_interface_config());
  dvmrp->start();
  dvmrp->on_report(0, kPeerA, report_from(kPeerA, {{P("10.9.0.0/16"), 4}}));
  dvmrp->send_reports_now();

  // On interface 0 (towards the upstream) the route is poisoned.
  ASSERT_EQ(sent_[0].size(), 1u);
  bool poisoned = false;
  for (const ReportedRoute& r : sent_[0][0].routes) {
    if (r.prefix == P("10.9.0.0/16")) poisoned = r.metric >= kInfinity;
  }
  EXPECT_TRUE(poisoned);

  // On interface 1 it is advertised normally.
  ASSERT_EQ(sent_[1].size(), 1u);
  bool normal = false;
  for (const ReportedRoute& r : sent_[1][0].routes) {
    if (r.prefix == P("10.9.0.0/16")) normal = r.metric == 5;
  }
  EXPECT_TRUE(normal);
}

TEST_F(DvmrpTest, UnreachableFromUpstreamEntersHolddown) {
  auto dvmrp = make(two_interface_config());
  dvmrp->start();
  dvmrp->on_report(0, kPeerA, report_from(kPeerA, {{P("10.9.0.0/16"), 4}}));
  dvmrp->on_report(0, kPeerA, report_from(kPeerA, {{P("10.9.0.0/16"), kInfinity - 1}}));
  const Route* route = dvmrp->routes().find(P("10.9.0.0/16"));
  ASSERT_NE(route, nullptr);
  EXPECT_EQ(route->state, RouteState::kHolddown);
  EXPECT_EQ(dvmrp->routes().valid_count(), 1u);  // only the local route
}

TEST_F(DvmrpTest, HolddownRouteRecoversOnNewAdvert) {
  auto dvmrp = make(two_interface_config());
  dvmrp->start();
  dvmrp->on_report(0, kPeerA, report_from(kPeerA, {{P("10.9.0.0/16"), 4}}));
  dvmrp->on_report(0, kPeerA, report_from(kPeerA, {{P("10.9.0.0/16"), kInfinity}}));
  ASSERT_EQ(dvmrp->routes().find(P("10.9.0.0/16"))->state, RouteState::kHolddown);
  dvmrp->on_report(1, kPeerB, report_from(kPeerB, {{P("10.9.0.0/16"), 2}}));
  const Route* route = dvmrp->routes().find(P("10.9.0.0/16"));
  EXPECT_EQ(route->state, RouteState::kValid);
  EXPECT_EQ(route->upstream, kPeerB);
}

TEST_F(DvmrpTest, ExpiryMovesStaleRoutesToHolddownThenGarbage) {
  Config config = two_interface_config();
  auto dvmrp = make(std::move(config));
  dvmrp->start();
  dvmrp->on_report(0, kPeerA, report_from(kPeerA, {{P("10.9.0.0/16"), 4}}));

  engine_.run_until(sim::TimePoint::start() + dvmrp->config().route_expiry +
                    sim::Duration::seconds(1));
  dvmrp->expire_now();
  EXPECT_EQ(dvmrp->routes().find(P("10.9.0.0/16"))->state, RouteState::kHolddown);

  engine_.run_until(engine_.now() + dvmrp->config().garbage_timeout +
                    sim::Duration::seconds(1));
  dvmrp->expire_now();
  EXPECT_EQ(dvmrp->routes().find(P("10.9.0.0/16")), nullptr);
  // The local route never expires.
  EXPECT_NE(dvmrp->routes().find(P("10.5.0.0/16")), nullptr);
}

TEST_F(DvmrpTest, AggregatesCoveredRoutesInReports) {
  Config config = two_interface_config();
  config.originated.push_back({P("10.6.16.0/24"), 1});
  config.originated.push_back({P("10.6.17.0/24"), 3});
  config.aggregates.push_back(P("10.6.0.0/16"));
  auto dvmrp = make(std::move(config));
  dvmrp->start();
  dvmrp->send_reports_now();

  ASSERT_FALSE(sent_[0].empty());
  bool aggregate_seen = false;
  for (const ReportedRoute& r : sent_[0][0].routes) {
    EXPECT_NE(r.prefix, P("10.6.16.0/24"));  // members are suppressed
    EXPECT_NE(r.prefix, P("10.6.17.0/24"));
    if (r.prefix == P("10.6.0.0/16")) {
      aggregate_seen = true;
      EXPECT_EQ(r.metric, 1);  // min metric of contributors
    }
  }
  EXPECT_TRUE(aggregate_seen);
}

TEST_F(DvmrpTest, InjectRoutesSpikesTableAndFlashes) {
  auto dvmrp = make(two_interface_config());
  dvmrp->start();
  const std::size_t before = dvmrp->routes().size();

  std::vector<ReportedRoute> injected;
  for (int i = 0; i < 100; ++i) {
    injected.push_back({net::Prefix(net::Ipv4Address(172, 16, static_cast<std::uint8_t>(i), 0), 24), 1});
  }
  dvmrp->inject_routes(injected);
  EXPECT_EQ(dvmrp->routes().size(), before + 100);
  // Flash update went out immediately.
  EXPECT_FALSE(sent_[0].empty());

  std::vector<net::Prefix> prefixes;
  for (const ReportedRoute& r : injected) prefixes.push_back(r.prefix);
  dvmrp->withdraw_routes(prefixes);
  EXPECT_EQ(dvmrp->routes().valid_count(), before);
}

TEST_F(DvmrpTest, RouteChangeCounterAdvances) {
  auto dvmrp = make(two_interface_config());
  dvmrp->start();
  const auto before = dvmrp->route_changes();
  dvmrp->on_report(0, kPeerA, report_from(kPeerA, {{P("10.9.0.0/16"), 4}}));
  EXPECT_GT(dvmrp->route_changes(), before);
  // A pure refresh does not count as a change.
  const auto after = dvmrp->route_changes();
  dvmrp->on_report(0, kPeerA, report_from(kPeerA, {{P("10.9.0.0/16"), 4}}));
  EXPECT_EQ(dvmrp->route_changes(), after);
}

TEST_F(DvmrpTest, PeriodicTimersEmitReports) {
  Config config = two_interface_config();
  config.timers_enabled = true;
  auto dvmrp = make(std::move(config));
  dvmrp->start();
  engine_.run_until(sim::TimePoint::start() +
                    dvmrp->config().report_interval * std::int64_t{3} +
                    sim::Duration::seconds(5));
  EXPECT_GE(sent_[0].size(), 3u);
}

TEST_F(DvmrpTest, InvalidMetricsIgnored) {
  auto dvmrp = make(two_interface_config());
  dvmrp->start();
  dvmrp->on_report(0, kPeerA, report_from(kPeerA, {{P("10.9.0.0/16"), 2 * kInfinity},
                                                  {P("10.8.0.0/16"), -1}}));
  EXPECT_EQ(dvmrp->routes().find(P("10.9.0.0/16")), nullptr);
  EXPECT_EQ(dvmrp->routes().find(P("10.8.0.0/16")), nullptr);
}

}  // namespace
}  // namespace mantra::dvmrp
