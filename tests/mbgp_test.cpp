#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "mbgp/mbgp.hpp"

namespace mantra::mbgp {
namespace {

const net::Ipv4Address kSelf{10, 0, 0, 1};
const net::Ipv4Address kPeerA{10, 0, 0, 2};
const net::Ipv4Address kPeerB{10, 0, 0, 3};

net::Prefix P(const char* text) { return *net::Prefix::parse(text); }

class MbgpTest : public ::testing::Test {
 protected:
  std::unique_ptr<Mbgp> make(Config config = default_config()) {
    auto mbgp = std::make_unique<Mbgp>(engine_, kSelf, std::move(config));
    mbgp->set_send_update([this](net::Ipv4Address peer, const Update& update) {
      sent_[peer].push_back(update);
    });
    return mbgp;
  }

  static Config default_config() {
    Config config;
    config.local_as = 100;
    config.peers = {{kPeerA, 200}, {kPeerB, 300}};
    return config;
  }

  Update announce(net::Ipv4Address sender, net::Prefix prefix,
                  std::vector<AsNumber> path) {
    Update update;
    update.sender = sender;
    update.announce.push_back({prefix, std::move(path), sender});
    return update;
  }

  sim::Engine engine_;
  std::map<net::Ipv4Address, std::vector<Update>> sent_;
};

TEST_F(MbgpTest, StartAnnouncesOriginatedPrefixes) {
  Config config = default_config();
  config.originated = {P("10.5.0.0/16")};
  auto mbgp = make(std::move(config));
  mbgp->start();
  EXPECT_EQ(mbgp->route_count(), 1u);
  ASSERT_EQ(sent_[kPeerA].size(), 1u);
  ASSERT_EQ(sent_[kPeerB].size(), 1u);
  const Advertisement& advert = sent_[kPeerA][0].announce.at(0);
  EXPECT_EQ(advert.prefix, P("10.5.0.0/16"));
  EXPECT_EQ(advert.as_path, (std::vector<AsNumber>{100}));
  EXPECT_EQ(advert.next_hop, kSelf);
}

TEST_F(MbgpTest, LearnsAndPropagatesWithAsPrepend) {
  auto mbgp = make();
  mbgp->start();
  mbgp->on_update(announce(kPeerA, P("10.9.0.0/16"), {200}));
  EXPECT_EQ(mbgp->route_count(), 1u);
  // Propagated to B (not back to A), with our AS prepended.
  EXPECT_TRUE(sent_[kPeerA].empty());
  ASSERT_EQ(sent_[kPeerB].size(), 1u);
  EXPECT_EQ(sent_[kPeerB][0].announce.at(0).as_path,
            (std::vector<AsNumber>{100, 200}));
}

TEST_F(MbgpTest, AsPathLoopRejected) {
  auto mbgp = make();
  mbgp->start();
  mbgp->on_update(announce(kPeerA, P("10.9.0.0/16"), {200, 100, 300}));
  EXPECT_EQ(mbgp->route_count(), 0u);
}

TEST_F(MbgpTest, ShorterAsPathWins) {
  auto mbgp = make();
  mbgp->start();
  mbgp->on_update(announce(kPeerA, P("10.9.0.0/16"), {200, 400, 500}));
  mbgp->on_update(announce(kPeerB, P("10.9.0.0/16"), {300}));
  const auto path = mbgp->rpf_lookup(net::Ipv4Address(10, 9, 1, 1));
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->second.learned_from, kPeerB);
}

TEST_F(MbgpTest, EqualLengthTiebreaksOnLowerPeer) {
  auto mbgp = make();
  mbgp->start();
  mbgp->on_update(announce(kPeerB, P("10.9.0.0/16"), {300}));
  mbgp->on_update(announce(kPeerA, P("10.9.0.0/16"), {200}));
  const auto path = mbgp->rpf_lookup(net::Ipv4Address(10, 9, 1, 1));
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->second.learned_from, kPeerA);
}

TEST_F(MbgpTest, LocalRouteBeatsLearned) {
  Config config = default_config();
  config.originated = {P("10.9.0.0/16")};
  auto mbgp = make(std::move(config));
  mbgp->start();
  mbgp->on_update(announce(kPeerA, P("10.9.0.0/16"), {200}));
  const auto path = mbgp->rpf_lookup(net::Ipv4Address(10, 9, 0, 1));
  ASSERT_TRUE(path.has_value());
  EXPECT_TRUE(path->second.local);
}

TEST_F(MbgpTest, WithdrawRemovesAndPropagates) {
  auto mbgp = make();
  mbgp->start();
  mbgp->on_update(announce(kPeerA, P("10.9.0.0/16"), {200}));
  Update withdraw;
  withdraw.sender = kPeerA;
  withdraw.withdraw = {P("10.9.0.0/16")};
  mbgp->on_update(withdraw);
  EXPECT_EQ(mbgp->route_count(), 0u);
  ASSERT_EQ(sent_[kPeerB].size(), 2u);
  EXPECT_EQ(sent_[kPeerB][1].withdraw.size(), 1u);
}

TEST_F(MbgpTest, WithdrawFallsBackToSecondBest) {
  auto mbgp = make();
  mbgp->start();
  mbgp->on_update(announce(kPeerA, P("10.9.0.0/16"), {200}));
  mbgp->on_update(announce(kPeerB, P("10.9.0.0/16"), {300, 400}));
  Update withdraw;
  withdraw.sender = kPeerA;
  withdraw.withdraw = {P("10.9.0.0/16")};
  mbgp->on_update(withdraw);
  const auto path = mbgp->rpf_lookup(net::Ipv4Address(10, 9, 0, 1));
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->second.learned_from, kPeerB);
}

TEST_F(MbgpTest, PeerDownFlushesItsRoutes) {
  auto mbgp = make();
  mbgp->start();
  mbgp->on_update(announce(kPeerA, P("10.9.0.0/16"), {200}));
  mbgp->on_update(announce(kPeerA, P("10.8.0.0/16"), {200}));
  EXPECT_EQ(mbgp->route_count(), 2u);
  mbgp->peer_down(kPeerA);
  EXPECT_EQ(mbgp->route_count(), 0u);
  // Updates from a down peer are ignored.
  mbgp->on_update(announce(kPeerA, P("10.7.0.0/16"), {200}));
  EXPECT_EQ(mbgp->route_count(), 0u);
}

TEST_F(MbgpTest, PeerUpReadvertisesLocRib) {
  Config config = default_config();
  config.originated = {P("10.5.0.0/16")};
  auto mbgp = make(std::move(config));
  mbgp->start();
  mbgp->peer_down(kPeerA);
  sent_.clear();
  mbgp->peer_up(kPeerA);
  ASSERT_EQ(sent_[kPeerA].size(), 1u);
  EXPECT_EQ(sent_[kPeerA][0].announce.at(0).prefix, P("10.5.0.0/16"));
}

TEST_F(MbgpTest, UnknownPeerUpdatesIgnored) {
  auto mbgp = make();
  mbgp->start();
  mbgp->on_update(announce(net::Ipv4Address(9, 9, 9, 9), P("10.9.0.0/16"), {700}));
  EXPECT_EQ(mbgp->route_count(), 0u);
}

TEST_F(MbgpTest, ExportPolicySuppressesAdvertisement) {
  Config config = default_config();
  config.originated = {P("10.5.0.0/16")};
  config.export_policy = [](const net::Prefix&, const PeerConfig& peer) {
    return peer.address != kPeerB;  // never export to B
  };
  auto mbgp = make(std::move(config));
  mbgp->start();
  EXPECT_EQ(sent_[kPeerA].size(), 1u);
  EXPECT_TRUE(sent_[kPeerB].empty());
}

TEST_F(MbgpTest, RpfLookupUsesLongestMatch) {
  auto mbgp = make();
  mbgp->start();
  mbgp->on_update(announce(kPeerA, P("10.0.0.0/8"), {200}));
  mbgp->on_update(announce(kPeerB, P("10.9.0.0/16"), {300}));
  const auto broad = mbgp->rpf_lookup(net::Ipv4Address(10, 1, 1, 1));
  const auto narrow = mbgp->rpf_lookup(net::Ipv4Address(10, 9, 1, 1));
  ASSERT_TRUE(broad && narrow);
  EXPECT_EQ(broad->second.learned_from, kPeerA);
  EXPECT_EQ(narrow->second.learned_from, kPeerB);
  EXPECT_FALSE(mbgp->rpf_lookup(net::Ipv4Address(11, 0, 0, 1)).has_value());
}

TEST_F(MbgpTest, DuplicateAnnouncementDoesNotRepropagate) {
  auto mbgp = make();
  mbgp->start();
  mbgp->on_update(announce(kPeerA, P("10.9.0.0/16"), {200}));
  const auto sent_before = sent_[kPeerB].size();
  mbgp->on_update(announce(kPeerA, P("10.9.0.0/16"), {200}));
  EXPECT_EQ(sent_[kPeerB].size(), sent_before);
}

TEST_F(MbgpTest, BestPathChangeCounterAdvances) {
  auto mbgp = make();
  mbgp->start();
  const auto before = mbgp->best_path_changes();
  mbgp->on_update(announce(kPeerA, P("10.9.0.0/16"), {200}));
  EXPECT_EQ(mbgp->best_path_changes(), before + 1);
}

}  // namespace
}  // namespace mantra::mbgp
