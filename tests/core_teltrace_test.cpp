// core/teltrace: the `.mtel` self-telemetry archive round-trips losslessly
// and truncates (never propagates) torn tails; hourly rollup sidecars answer
// coarse queries bit-identically to raw scans and are rejected when stale;
// compaction heals damage and honors retention; the self-monitoring rule
// pack fires on a seeded capture-fault burst; and the report's "Monitor
// health" section renders byte-identically live and from an `.mtel` replay.
// Sampling is result-neutral: every monitored-path output is byte-identical
// with the self-monitor on or off.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/mantra.hpp"
#include "core/query.hpp"
#include "core/report.hpp"
#include "core/teltrace.hpp"
#include "core/telemetry.hpp"
#include "core/transport.hpp"
#include "sim/time.hpp"
#include "workload/scenario.hpp"

namespace mantra::core {
namespace {

std::filesystem::path temp_dir(const std::string& name) {
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

std::string read_file_bytes(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Deterministic synthetic sample stream: a growing dictionary (one counter
/// family gains a labeled instance mid-stream), negative/fractional gauge
/// values, a histogram, help upserts, and an event tail — every codec path.
TelemetrySample make_sample(int i) {
  TelemetrySample sample;
  sample.t_ms = static_cast<std::int64_t>(i) * 600'000;  // every 10 minutes

  MetricsSnapshot& m = sample.metrics;
  m.counters.push_back({"c_total", "", static_cast<std::uint64_t>(i) * 3 + 1});
  if (i >= 5) {
    // New dictionary entry appears mid-file; labels sort after "".
    m.counters.push_back(
        {"c_total", "target=\"a b\"", static_cast<std::uint64_t>(i - 5) * 7});
  }
  m.gauges.push_back({"g", "", 0.5 * i - 7.25});
  MetricsSnapshot::HistogramSample h;
  h.name = "h";
  h.bounds = {1.0, 2.0};
  h.buckets = {static_cast<std::uint64_t>(i), static_cast<std::uint64_t>(i / 2),
               static_cast<std::uint64_t>(i / 3)};
  h.count = h.buckets[0] + h.buckets[1] + h.buckets[2];
  h.sum = 1.375 * i;
  m.histograms.push_back(std::move(h));
  m.help["c_total"] = i < 8 ? "first help text" : "upserted help text";
  if (i < 4) m.help["g"] = "transient help";  // exercises help removal

  if (i % 3 == 0) {
    TelemetryEvent event;
    event.level = EventLevel::warn;
    event.name = "tick";
    event.sim_ts_ms = sample.t_ms;
    event.seq = static_cast<std::uint64_t>(i);
    event.fields = {{"i", std::to_string(i)}, {"note", "quote \" here"}};
    sample.events.push_back(std::move(event));
  }
  return sample;
}

// --- `.mtel` archive ---------------------------------------------------------

TEST(TelemetryArchive, RoundTripIsLossless) {
  const std::filesystem::path dir = temp_dir("mantra_mtel_roundtrip");
  const std::string path = (dir / "self.mtel").string();

  std::vector<TelemetrySample> written;
  {
    TelemetryArchiveOptions options;
    options.keyframe_interval = 3;  // keyframes and deltas both exercised
    TelemetryArchiveWriter writer(path, options);
    for (int i = 0; i < 20; ++i) {
      written.push_back(make_sample(i));
      writer.append(written.back());
    }
    EXPECT_EQ(writer.samples_written(), 20u);
    writer.close();
    EXPECT_EQ(writer.bytes_written(), std::filesystem::file_size(path));
  }

  TelemetryArchiveReader reader(path);
  EXPECT_TRUE(reader.recovery().clean);
  EXPECT_EQ(reader.recovery().bytes_dropped, 0u);
  EXPECT_EQ(reader.indexed_bytes(), std::filesystem::file_size(path));
  ASSERT_EQ(reader.size(), written.size());
  for (std::size_t i = 0; i < written.size(); ++i) {
    EXPECT_EQ(reader.samples()[i], written[i]) << "sample #" << i;
  }
  std::filesystem::remove_all(dir);
}

TEST(TelemetryArchive, TornTailIsTruncatedNotFatal) {
  const std::filesystem::path dir = temp_dir("mantra_mtel_torn");

  std::vector<TelemetrySample> written;
  std::vector<std::uint64_t> boundaries;  // file size after each append
  const auto write_archive = [&](const std::string& path) {
    written.clear();
    boundaries.clear();
    TelemetryArchiveWriter writer(path);
    for (int i = 0; i < 6; ++i) {
      written.push_back(make_sample(i));
      writer.append(written.back());
      boundaries.push_back(writer.bytes_written());
    }
    writer.close();
  };

  // Truncation mid-payload: the final record is dropped, all before survive.
  const std::string mid_payload = (dir / "mid_payload.mtel").string();
  write_archive(mid_payload);
  std::filesystem::resize_file(mid_payload, boundaries[5] - 1);
  {
    TelemetryArchiveReader reader(mid_payload);
    EXPECT_FALSE(reader.recovery().clean);
    EXPECT_FALSE(reader.recovery().reason.empty());
    EXPECT_GT(reader.recovery().bytes_dropped, 0u);
    ASSERT_EQ(reader.size(), 5u);
    for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(reader.samples()[i], written[i]);
    EXPECT_EQ(reader.indexed_bytes(), boundaries[4]);
  }

  // Truncation inside a record's length/crc frame.
  const std::string mid_frame = (dir / "mid_frame.mtel").string();
  write_archive(mid_frame);
  std::filesystem::resize_file(mid_frame, boundaries[3] + 4);
  {
    TelemetryArchiveReader reader(mid_frame);
    EXPECT_FALSE(reader.recovery().clean);
    ASSERT_EQ(reader.size(), 4u);
  }

  // A flipped payload byte fails the CRC: that record and everything after
  // it are dropped, the clean prefix survives.
  const std::string corrupt = (dir / "corrupt.mtel").string();
  write_archive(corrupt);
  {
    std::FILE* file = std::fopen(corrupt.c_str(), "r+b");
    ASSERT_NE(file, nullptr);
    std::fseek(file, static_cast<long>(boundaries[1]) + 8, SEEK_SET);
    const int byte = std::fgetc(file);
    std::fseek(file, static_cast<long>(boundaries[1]) + 8, SEEK_SET);
    std::fputc(byte ^ 0xFF, file);
    std::fclose(file);
  }
  {
    TelemetryArchiveReader reader(corrupt);
    EXPECT_FALSE(reader.recovery().clean);
    EXPECT_GT(reader.recovery().bytes_dropped, 0u);
    ASSERT_EQ(reader.size(), 2u);
    EXPECT_EQ(reader.samples()[0], written[0]);
    EXPECT_EQ(reader.samples()[1], written[1]);
  }
  std::filesystem::remove_all(dir);
}

TEST(TelemetryArchive, MissingFileAndBadHeaderThrow) {
  const std::filesystem::path dir = temp_dir("mantra_mtel_badopen");
  EXPECT_THROW(TelemetryArchiveReader((dir / "absent.mtel").string()),
               std::runtime_error);
  const std::string junk = (dir / "junk.mtel").string();
  {
    std::ofstream out(junk, std::ios::binary);
    out << "this is not an mtel file";
  }
  EXPECT_THROW((void)TelemetryArchiveReader{junk}, std::runtime_error);
  std::filesystem::remove_all(dir);
}

// --- Rollups & queries -------------------------------------------------------

void expect_points_equal(const QueryResult& a, const QueryResult& b,
                         const std::string& what) {
  ASSERT_EQ(a.points.size(), b.points.size()) << what;
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    EXPECT_EQ(a.points[i].t, b.points[i].t) << what << " point #" << i;
    // Bit-identical, not approximately equal: both paths must run the same
    // accumulation in the same order.
    EXPECT_EQ(a.points[i].value, b.points[i].value) << what << " point #" << i;
    EXPECT_EQ(a.points[i].samples, b.points[i].samples) << what << " point #" << i;
  }
}

TEST(TelemetryRollups, HourlyRollupAnswersAreBitIdenticalToRawScans) {
  const std::filesystem::path dir = temp_dir("mantra_mtrl_parity");
  const std::string raw_path = (dir / "self.mtel").string();
  const std::string compacted = (dir / "compacted.mtel").string();
  {
    TelemetryArchiveWriter writer(raw_path);
    // 30 hours at one sample per 10 minutes.
    for (int i = 0; i < 180; ++i) writer.append(make_sample(i));
  }
  const TelemetryCompactionStats stats =
      compact_telemetry_archive(raw_path, compacted);
  EXPECT_EQ(stats.samples_out, 180u);
  EXPECT_TRUE(stats.rollups_written);
  EXPECT_GT(stats.rollup_series, 0u);
  EXPECT_GT(stats.rollup_hour_buckets, 0u);
  ASSERT_TRUE(std::filesystem::exists(telemetry_rollup_path_for(compacted)));

  TelemetryQueryEngine engine;
  engine.add_archive("self", compacted);
  ASSERT_TRUE(engine.has_rollups("self"));
  EXPECT_EQ(engine.rollups_rejected(), 0u);

  const std::vector<std::string> series =
      telemetry_series_names(engine.reader("self")->samples().back().metrics);
  ASSERT_FALSE(series.empty());
  const std::vector<QueryAggregate> aggregates = {
      QueryAggregate::last, QueryAggregate::min,  QueryAggregate::max,
      QueryAggregate::mean, QueryAggregate::sum,  QueryAggregate::count};
  // Full range plus a deliberately bucket-misaligned window (snaps outward).
  const std::vector<std::pair<sim::TimePoint, sim::TimePoint>> ranges = {
      {sim::TimePoint::start(), sim::TimePoint::from_ms(std::int64_t{1} << 62)},
      {sim::TimePoint::from_ms(5 * 3'600'000 + 13 * 60'000),
       sim::TimePoint::from_ms(17 * 3'600'000 + 47 * 60'000)},
  };
  std::size_t rollup_served = 0;
  for (const std::string& name : series) {
    for (const QueryAggregate aggregate : aggregates) {
      for (const auto& [from, to] : ranges) {
        TelemetryQuery query;
        query.source = "self";
        query.series = name;
        query.from = from;
        query.to = to;
        query.resolution = QueryResolution::hour;
        query.aggregate = aggregate;
        const QueryResult via_rollup = engine.run(query);
        query.allow_rollup = false;
        const QueryResult via_raw = engine.run(query);
        EXPECT_FALSE(via_raw.from_rollup);
        EXPECT_GT(via_raw.records_decoded, 0u) << name;
        if (via_rollup.from_rollup) {
          ++rollup_served;
          EXPECT_EQ(via_rollup.records_decoded, 0u) << name;
        }
        expect_points_equal(via_rollup, via_raw, name);
      }
    }
  }
  // The sidecar actually served the coarse queries — the parity above was
  // rollup-vs-raw, not raw-vs-raw.
  EXPECT_EQ(rollup_served, series.size() * aggregates.size() * ranges.size());

  // Day resolution is not materialized: it must fall back to the raw scan.
  TelemetryQuery day;
  day.source = "self";
  day.series = series.front();
  day.resolution = QueryResolution::day;
  EXPECT_FALSE(engine.run(day).from_rollup);
  EXPECT_GT(engine.run(day).records_decoded, 0u);
  std::filesystem::remove_all(dir);
}

TEST(TelemetryRollups, StaleSidecarIsRejectedAndRawScanServes) {
  const std::filesystem::path dir = temp_dir("mantra_mtrl_stale");
  const std::string path = (dir / "self.mtel").string();
  {
    TelemetryArchiveWriter writer(path);
    for (int i = 0; i < 30; ++i) writer.append(make_sample(i));
  }
  TelemetryArchiveReader reader(path);
  TelemetryRollupSidecar sidecar = build_telemetry_rollups(reader);
  sidecar.source.samples += 1;  // no longer matches the `.mtel`
  ASSERT_TRUE(
      write_telemetry_rollup_sidecar(telemetry_rollup_path_for(path), sidecar));

  TelemetryQueryEngine engine;
  engine.add_archive("self", path);
  EXPECT_FALSE(engine.has_rollups("self"));
  EXPECT_EQ(engine.rollups_rejected(), 1u);

  TelemetryQuery query;
  query.source = "self";
  query.series = "c_total";
  query.resolution = QueryResolution::hour;
  query.aggregate = QueryAggregate::last;
  const QueryResult result = engine.run(query);
  EXPECT_FALSE(result.from_rollup);
  EXPECT_EQ(result.records_decoded, 30u);
  EXPECT_FALSE(result.points.empty());

  EXPECT_THROW((void)engine.run({.source = "unknown", .series = "c_total"}),
               std::invalid_argument);
  std::filesystem::remove_all(dir);
}

TEST(TelemetryCompaction, HealsTornTailsAndHonorsRetention) {
  const std::filesystem::path dir = temp_dir("mantra_mtel_compact");
  const std::string damaged = (dir / "damaged.mtel").string();
  std::uint64_t keep_bytes = 0;
  {
    TelemetryArchiveWriter writer(damaged);
    for (int i = 0; i < 24; ++i) {
      writer.append(make_sample(i));
      if (i == 22) keep_bytes = writer.bytes_written();
    }
    writer.close();
  }
  std::filesystem::resize_file(damaged, keep_bytes + 5);  // tear the tail

  // drop_before removes the first 2 hours (samples 0..11); the torn final
  // record is healed by construction.
  TelemetryCompactionOptions options;
  options.drop_before = sim::TimePoint::from_ms(12 * 600'000);
  const std::string healed = (dir / "healed.mtel").string();
  const TelemetryCompactionStats stats =
      compact_telemetry_archive(damaged, healed, options);
  EXPECT_EQ(stats.samples_in, 23u);  // sample 23 was torn off
  EXPECT_EQ(stats.samples_dropped, 12u);
  EXPECT_EQ(stats.samples_out, 11u);
  EXPECT_LT(stats.bytes_out, stats.bytes_in);
  EXPECT_TRUE(stats.rollups_written);

  TelemetryArchiveReader reader(healed);
  EXPECT_TRUE(reader.recovery().clean);
  ASSERT_EQ(reader.size(), 11u);
  for (std::size_t i = 0; i < reader.size(); ++i) {
    EXPECT_EQ(reader.samples()[i], make_sample(static_cast<int>(i) + 12));
  }
  TelemetryQueryEngine engine;
  engine.add_archive("self", healed);
  EXPECT_TRUE(engine.has_rollups("self"));
  std::filesystem::remove_all(dir);
}

// --- Self-monitoring over a live Mantra -------------------------------------

workload::ScenarioConfig small_scenario(std::uint64_t seed) {
  workload::ScenarioConfig config;
  config.seed = seed;
  config.domains = 4;
  config.hosts_per_domain = 6;
  config.dvmrp_prefixes_per_domain = 6;
  config.report_loss = 0.02;
  config.timer_scale = 1;
  config.full_timers = true;
  config.generator.session_arrivals_per_hour = 40.0;
  config.generator.bursts_per_day = 0.0;
  return config;
}

TEST(SelfMonitor, SeededFaultBurstFiresCaptureFailureRate) {
  workload::FixwScenario scenario(small_scenario(23));
  scenario.start();

  MantraConfig config;
  config.cycle = sim::Duration::minutes(15);
  config.retry.max_attempts = 2;
  config.telemetry.enabled = true;
  config.self.enabled = true;
  config.self.name = "monitor";
  Mantra monitor(scenario.engine(), config,
                 [](const std::string& name) -> std::unique_ptr<Transport> {
                   return std::make_unique<FaultInjectingTransport>(
                       per_target_seed(0xb00f, name),
                       FaultProfile::command_failure_rate(0.9));
                 });
  monitor.add_target(scenario.network().router(scenario.fixw_node()));
  monitor.add_target(scenario.network().router(scenario.ucsb_node()));
  monitor.start();
  scenario.engine().run_until(scenario.engine().now() + sim::Duration::hours(4));

  SelfMonitor* self = monitor.self_monitor();
  ASSERT_NE(self, nullptr);
  EXPECT_EQ(self->samples().size(), monitor.status().cycles_run);

  bool fired = false;
  for (const AlertRecord& record : self->alerts().history()) {
    if (record.rule != "capture_failure_rate") continue;
    fired = true;
    EXPECT_EQ(record.target, "monitor");
    EXPECT_EQ(record.severity, AlertSeverity::critical);
    EXPECT_GE(record.peak_value, 0.5);
  }
  EXPECT_TRUE(fired) << "capture_failure_rate never fired under a 90% "
                        "command-failure transport";
  // The closed loop: the self-alert transition was mirrored back into the
  // telemetry the next samples archived.
  const TelemetrySample& last = self->samples().back();
  EXPECT_NE(find_gauge(last.metrics, "mantra_alert_state",
                       "rule=\"capture_failure_rate\",target=\"monitor\""),
            nullptr);
}

TEST(SelfMonitor, LiveAndMtelReplayReportsAreByteIdentical) {
  workload::FixwScenario scenario(small_scenario(29));
  scenario.start();
  const std::filesystem::path dir = temp_dir("mantra_mtel_replay");
  const std::string mtel = (dir / "monitor.mtel").string();

  MantraConfig config;
  config.cycle = sim::Duration::minutes(15);
  config.retry.max_attempts = 2;
  config.archive_dir = dir.string();
  config.alerts.enabled = true;
  config.telemetry.enabled = true;
  config.self.enabled = true;
  config.self.path = mtel;
  auto monitor = std::make_unique<Mantra>(
      scenario.engine(), config,
      [](const std::string& name) -> std::unique_ptr<Transport> {
        FaultProfile profile;
        if (name == "ucsb-gw") profile = FaultProfile::command_failure_rate(0.3);
        return std::make_unique<FaultInjectingTransport>(
            per_target_seed(0x51ab, name), profile);
      });
  monitor->add_target(scenario.network().router(scenario.fixw_node()));
  monitor->add_target(scenario.network().router(scenario.ucsb_node()));
  monitor->start();
  scenario.engine().run_until(scenario.engine().now() + sim::Duration::hours(6));

  const std::string live = render_html_report(report_data_from(*monitor));
  EXPECT_NE(live.find("Monitor health"), std::string::npos);
  const std::vector<TelemetrySample> live_samples =
      monitor->self_monitor()->samples();
  const std::vector<std::string> targets = monitor->target_names();
  monitor.reset();  // flushes the .marc archives and the .mtel

  // Offline rebuild: target streams from the .marc files, the "Monitor
  // health" section from the decoded .mtel — no live state involved.
  QueryEngine marc;
  std::vector<ReportTargetData> replayed;
  for (const std::string& target : targets) {
    marc.add_archive(target, (dir / (target + ".marc")).string());
    replayed.push_back({target, marc.replay(target).results});
  }
  TelemetryArchiveReader reader(mtel);
  EXPECT_TRUE(reader.recovery().clean);
  EXPECT_EQ(reader.samples(), live_samples);  // the codec is lossless
  ReportData offline = report_data_from_replay(
      std::move(replayed), default_alert_rules(), &reader.samples());
  offline.health = monitor_health_from_samples("monitor", reader.samples());

  EXPECT_EQ(live, render_html_report(offline));
  std::filesystem::remove_all(dir);
}

TEST(SelfMonitor, SamplingIsResultNeutral) {
  workload::FixwScenario scenario(small_scenario(31));
  scenario.start();
  const std::filesystem::path base = temp_dir("mantra_self_neutral");
  const std::string off_dir = (base / "off").string();
  const std::string on_dir = (base / "on").string();

  const auto make_monitor = [&](bool self_on, const std::string& dir) {
    MantraConfig config;
    config.cycle = sim::Duration::minutes(15);
    config.retry.max_attempts = 2;
    config.worker_threads = 4;
    config.archive_dir = dir;
    config.alerts.enabled = true;
    config.telemetry.enabled = true;
    config.self.enabled = self_on;
    if (self_on) config.self.path = dir + "/monitor.mtel";
    auto monitor = std::make_unique<Mantra>(
        scenario.engine(), config,
        [](const std::string& name) -> std::unique_ptr<Transport> {
          FaultProfile profile;
          if (name == "ucsb-gw") profile = FaultProfile::command_failure_rate(0.3);
          return std::make_unique<FaultInjectingTransport>(
              per_target_seed(0x7e1e, name), profile);
        });
    monitor->add_target(scenario.network().router(scenario.fixw_node()));
    monitor->add_target(scenario.network().router(scenario.ucsb_node()));
    monitor->start();
    return monitor;
  };
  auto off = make_monitor(false, off_dir);
  auto on = make_monitor(true, on_dir);
  scenario.engine().run_until(scenario.engine().now() + sim::Duration::hours(4));

  ASSERT_NE(on->self_monitor(), nullptr);
  EXPECT_EQ(off->self_monitor(), nullptr);
  EXPECT_GT(on->self_monitor()->samples().size(), 0u);

  // The invariant: sampling reads collection state, never feeds back into it.
  for (const std::string& name : off->target_names()) {
    EXPECT_EQ(off->target_view(name).results(), on->target_view(name).results())
        << "target " << name;
    const auto sessions = [](const CycleResult& r) {
      return static_cast<double>(r.usage.sessions);
    };
    EXPECT_EQ(off->series(name, "sessions", sessions).to_csv(),
              on->series(name, "sessions", sessions).to_csv())
        << "target " << name;
  }
  EXPECT_EQ(off->overview().to_csv(), on->overview().to_csv());
  EXPECT_EQ(off->status().to_table().to_csv(), on->status().to_table().to_csv());

  const std::vector<std::string> names = off->target_names();
  off.reset();
  on.reset();
  for (const std::string& name : names) {
    const std::string off_bytes =
        read_file_bytes(std::filesystem::path(off_dir) / (name + ".marc"));
    const std::string on_bytes =
        read_file_bytes(std::filesystem::path(on_dir) / (name + ".marc"));
    EXPECT_FALSE(off_bytes.empty()) << "target " << name;
    EXPECT_EQ(off_bytes, on_bytes) << "target " << name;
  }
  std::filesystem::remove_all(base);
}

// --- Thread safety (run under the tsan preset) -------------------------------

TEST(TeltraceConcurrency, SamplerRacesInstrumentation) {
  TelemetryConfig telemetry_config;
  telemetry_config.enabled = true;
  telemetry_config.max_events = 512;
  Telemetry telemetry(telemetry_config);

  SelfMonitorConfig config;
  config.enabled = true;
  config.name = "race";
  SelfMonitor self(config, &telemetry);

  std::atomic<bool> stop{false};
  std::vector<std::thread> hammers;
  for (int t = 0; t < 4; ++t) {
    hammers.emplace_back([&telemetry, &stop, t] {
      const std::string target = "target-" + std::to_string(t);
      int i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        telemetry.metrics().counter("race_total").inc();
        telemetry.metrics()
            .counter("race_labeled_total", {{"target", target}})
            .inc();
        telemetry.metrics().gauge("race_gauge").set(static_cast<double>(i));
        telemetry.metrics().histogram("race_lat").observe(
            static_cast<double>(i % 5));
        if (i % 16 == 0) {
          telemetry.events().log(EventLevel::info, "race_tick",
                                 sim::TimePoint::from_ms(i), {{"t", target}});
        }
        ++i;
      }
    });
  }
  // Don't race past the hammers before they even start: sample only once
  // instrumentation is observably flowing, and keep it flowing mid-loop.
  while (telemetry.metrics().counter_total("race_total") == 0) {
    std::this_thread::yield();
  }
  constexpr int kSamples = 64;
  for (int i = 0; i < kSamples; ++i) {
    self.sample(sim::TimePoint::from_ms(static_cast<std::int64_t>(i) * 1000));
    if (i % 16 == 0) std::this_thread::yield();
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& thread : hammers) thread.join();

  ASSERT_EQ(self.samples().size(), static_cast<std::size_t>(kSamples));
  // Each sample is a consistent snapshot: the shared counter is monotone
  // across samples and event seqs never repeat between tails.
  std::uint64_t prev_total = 0;
  std::uint64_t next_seq = 0;
  for (const TelemetrySample& sample : self.samples()) {
    const MetricsSnapshot::CounterSample* total =
        find_counter(sample.metrics, "race_total");
    if (total != nullptr) {
      EXPECT_GE(total->value, prev_total);
      prev_total = total->value;
    }
    for (const TelemetryEvent& event : sample.events) {
      EXPECT_GE(event.seq, next_seq);
      next_seq = event.seq + 1;
    }
  }
  EXPECT_GT(prev_total, 0u);
}

}  // namespace
}  // namespace mantra::core
