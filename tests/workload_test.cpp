#include <gtest/gtest.h>

#include "workload/generator.hpp"
#include "workload/scenario.hpp"

namespace mantra::workload {
namespace {

TEST(GroupAllocator, AllocatesDistinctAddressesAcrossRanges) {
  GroupAllocator allocator({*net::Prefix::parse("224.2.0.0/16"),
                            *net::Prefix::parse("224.4.0.0/16")});
  std::set<net::Ipv4Address> seen;
  for (int i = 0; i < 1000; ++i) {
    const net::Ipv4Address group = allocator.allocate();
    ASSERT_FALSE(group.is_unspecified());
    ASSERT_TRUE(group.is_multicast());
    EXPECT_TRUE(seen.insert(group).second) << group.to_string();
  }
  EXPECT_EQ(allocator.live_count(), 1000u);
}

TEST(GroupAllocator, ReleaseMakesAddressReusable) {
  GroupAllocator allocator({*net::Prefix::parse("224.2.0.0/16")});
  const net::Ipv4Address group = allocator.allocate();
  allocator.release(group);
  EXPECT_EQ(allocator.live_count(), 0u);
}

class GeneratorTest : public ::testing::Test {
 protected:
  GeneratorTest() : scenario_(make_config()) { scenario_.start(); }

  static ScenarioConfig make_config() {
    ScenarioConfig config;
    config.seed = 9;
    config.domains = 5;
    config.hosts_per_domain = 20;
    config.dvmrp_prefixes_per_domain = 4;
    config.report_loss = 0.0;
    config.timer_scale = 10;       // trace-scale mode
    config.full_timers = false;
    config.generator.session_arrivals_per_hour = 60.0;
    config.generator.bursts_per_day = 0.0;
    return config;
  }

  void run_hours(int hours) {
    scenario_.engine().run_until(scenario_.engine().now() +
                                 sim::Duration::hours(hours));
  }

  FixwScenario scenario_;
};

TEST_F(GeneratorTest, SessionsReachSteadyChurn) {
  run_hours(6);
  Generator& generator = scenario_.generator();
  EXPECT_GT(generator.sessions_created(), 200u);
  EXPECT_GT(generator.live_session_count(), 20u);
  // Sessions end too: live count is well below total created.
  EXPECT_LT(generator.live_session_count(), generator.sessions_created() / 2);
}

TEST_F(GeneratorTest, MembershipIsHeavyTailed) {
  run_hours(6);
  std::size_t singles = 0, total = 0, at_most_two = 0;
  for (const auto& [group, session] : scenario_.generator().sessions()) {
    ++total;
    if (session.participants.size() <= 1) ++singles;
    if (session.participants.size() <= 2) ++at_most_two;
  }
  ASSERT_GT(total, 0u);
  // The paper's offline claim: most sessions have <= 2 participants.
  EXPECT_GT(static_cast<double>(at_most_two) / static_cast<double>(total), 0.55);
  EXPECT_GT(singles, 0u);
}

TEST_F(GeneratorTest, SenderRatesRespectThresholdSplit) {
  run_hours(4);
  for (const auto& [group, session] : scenario_.generator().sessions()) {
    for (const auto& [host, participant] : session.participants) {
      if (participant.sender) {
        EXPECT_GT(participant.rate_kbps, 4.0);
      } else {
        EXPECT_LT(participant.rate_kbps, 4.0);
      }
    }
  }
}

TEST_F(GeneratorTest, FlowsExistForParticipants) {
  run_hours(3);
  // Every live participant has a live flow in the network.
  std::size_t checked = 0;
  for (const auto& [group, session] : scenario_.generator().sessions()) {
    for (const auto& [host, participant] : session.participants) {
      const router::Flow* flow = scenario_.network().flow(
          scenario_.network().host_address(host), group);
      ASSERT_NE(flow, nullptr);
      EXPECT_TRUE(flow->active);
      if (++checked > 50) return;  // sample is enough
    }
  }
}

TEST_F(GeneratorTest, SparseProbabilitySwitchesPlane) {
  scenario_.generator().set_sparse_probability(1.0);
  const net::Ipv4Address group = scenario_.generator().create_session_now(
      false, true, sim::Duration::hours(1), 3);
  ASSERT_FALSE(group.is_unspecified());
  EXPECT_EQ(scenario_.generator().sessions().at(group).plane,
            router::MfcMode::kSparse);
}

TEST_F(GeneratorTest, BurstCreatesSingleMemberSessions) {
  auto& params = scenario_.generator().params();
  params.bursts_per_day = 0.0;
  const std::size_t before = scenario_.generator().live_session_count();
  // Create a burst-like batch via the public surface: one host, many groups.
  for (int i = 0; i < 50; ++i) {
    scenario_.generator().create_session_now(true, false,
                                             sim::Duration::minutes(30), 1);
  }
  EXPECT_EQ(scenario_.generator().live_session_count(), before + 50);
}

TEST_F(GeneratorTest, AudienceSurgeRaisesParticipants) {
  run_hours(1);
  const std::uint64_t before = scenario_.generator().participants_added();
  scenario_.generator().schedule_audience_surge(
      scenario_.engine().now() + sim::Duration::minutes(5),
      sim::Duration::hours(2), sim::Duration::hours(8), 150, 3);
  run_hours(4);
  EXPECT_GT(scenario_.generator().participants_added(), before + 100);
}

TEST_F(GeneratorTest, SessionsEndCleanly) {
  // A short session's participants must be fully torn down.
  const net::Ipv4Address group = scenario_.generator().create_session_now(
      false, true, sim::Duration::minutes(10), 2);
  run_hours(1);
  EXPECT_EQ(scenario_.generator().sessions().count(group), 0u);
}

TEST(ScenarioMigration, DvmrpRouteCountDeclines) {
  ScenarioConfig config;
  config.seed = 13;
  config.domains = 6;
  config.hosts_per_domain = 2;
  config.dvmrp_prefixes_per_domain = 20;
  config.report_loss = 0.0;
  config.timer_scale = 1;
  config.full_timers = true;
  config.generator.session_arrivals_per_hour = 0.0;
  config.generator.bursts_per_day = 0.0;
  FixwScenario scenario(config);
  scenario.start();
  scenario.engine().run_until(sim::TimePoint::start() + sim::Duration::minutes(5));

  const auto* fixw = scenario.network().router(scenario.fixw_node());
  const std::size_t before = fixw->dvmrp()->routes().valid_count();

  scenario.schedule_dvmrp_migration(scenario.engine().now() + sim::Duration::minutes(1),
                                    sim::Duration::minutes(10), 1.0);
  scenario.engine().run_until(scenario.engine().now() + sim::Duration::minutes(30));
  const std::size_t after = fixw->dvmrp()->routes().valid_count();
  // All domains except UCSB withdrew their stubs.
  EXPECT_LT(after, before - 50);
}

TEST(ScenarioInjection, UcsbTableSpikes) {
  ScenarioConfig config;
  config.seed = 17;
  config.domains = 4;
  config.hosts_per_domain = 2;
  config.dvmrp_prefixes_per_domain = 5;
  config.report_loss = 0.0;
  config.timer_scale = 1;
  config.full_timers = true;
  config.generator.session_arrivals_per_hour = 0.0;
  config.generator.bursts_per_day = 0.0;
  FixwScenario scenario(config);
  scenario.start();
  scenario.engine().run_until(sim::TimePoint::start() + sim::Duration::minutes(5));

  const auto* ucsb = scenario.network().router(scenario.ucsb_node());
  const std::size_t before = ucsb->dvmrp()->routes().valid_count();
  scenario.schedule_route_injection(scenario.engine().now() + sim::Duration::minutes(1),
                                    500, sim::Duration::hours(1));
  scenario.engine().run_until(scenario.engine().now() + sim::Duration::minutes(5));
  EXPECT_GE(ucsb->dvmrp()->routes().valid_count(), before + 500);
  // After the revert the injected routes age out of hold-down.
  scenario.engine().run_until(scenario.engine().now() + sim::Duration::hours(2));
  EXPECT_LT(ucsb->dvmrp()->routes().valid_count(), before + 50);
}

TEST(ScenarioTransition, SparseProbabilityRampsOverTime) {
  ScenarioConfig config;
  config.seed = 19;
  config.domains = 3;
  config.hosts_per_domain = 2;
  config.generator.session_arrivals_per_hour = 0.0;
  config.generator.bursts_per_day = 0.0;
  config.full_timers = false;
  FixwScenario scenario(config);
  scenario.start();
  scenario.schedule_transition(sim::TimePoint::start() + sim::Duration::days(1),
                               sim::Duration::days(10), 0.9);
  scenario.engine().run_until(sim::TimePoint::start() + sim::Duration::days(6));
  const double mid = scenario.generator().sparse_probability();
  EXPECT_GT(mid, 0.3);
  EXPECT_LT(mid, 0.9);
  scenario.engine().run_until(sim::TimePoint::start() + sim::Duration::days(12));
  EXPECT_NEAR(scenario.generator().sparse_probability(), 0.9, 1e-9);
}

}  // namespace
}  // namespace mantra::workload
