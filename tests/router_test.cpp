#include <gtest/gtest.h>

#include "router/cli.hpp"
#include "router/mfc.hpp"
#include "router/network.hpp"
#include "router/router.hpp"
#include "router/unicast.hpp"

namespace mantra::router {
namespace {

net::Prefix P(const char* text) { return *net::Prefix::parse(text); }
const net::Ipv4Address kGroup{224, 2, 0, 5};

// --- Unicast (global Dijkstra) ------------------------------------------------

class UnicastTest : public ::testing::Test {
 protected:
  // a --- b --- c, with a stub LAN on c.
  UnicastTest() {
    a_ = topo_.add_router("a");
    b_ = topo_.add_router("b");
    c_ = topo_.add_router("c");
    topo_.connect(a_, b_, P("192.168.0.0/30"));
    topo_.connect(b_, c_, P("192.168.0.4/30"));
    lan_ = topo_.create_lan(P("10.3.1.0/24"));
    topo_.attach_to_lan(c_, lan_);
  }

  net::Topology topo_;
  net::NodeId a_, b_, c_;
  net::LinkId lan_;
};

TEST_F(UnicastTest, DirectlyConnectedRoutesHaveNoNextHop) {
  const auto ribs = compute_global_routes(topo_);
  const UnicastRoute* route = ribs[a_].lookup(net::Ipv4Address(192, 168, 0, 2));
  ASSERT_NE(route, nullptr);
  EXPECT_TRUE(route->next_hop.is_unspecified());
  EXPECT_EQ(route->metric, 0);
}

TEST_F(UnicastTest, RemoteSubnetRoutesViaShortestPath) {
  const auto ribs = compute_global_routes(topo_);
  const UnicastRoute* route = ribs[a_].lookup(net::Ipv4Address(10, 3, 1, 7));
  ASSERT_NE(route, nullptr);
  EXPECT_EQ(route->next_hop, net::Ipv4Address(192, 168, 0, 2));  // via b
  EXPECT_EQ(route->metric, 2);
}

TEST_F(UnicastTest, MetricsSteerPathSelection) {
  // Add a parallel expensive a--c link; shortest path should stay via b.
  topo_.connect(a_, c_, P("192.168.0.8/30"), net::LinkKind::kPointToPoint, 1,
                /*metric=*/10);
  const auto ribs = compute_global_routes(topo_);
  const UnicastRoute* route = ribs[a_].lookup(net::Ipv4Address(10, 3, 1, 7));
  ASSERT_NE(route, nullptr);
  EXPECT_EQ(route->next_hop, net::Ipv4Address(192, 168, 0, 2));
}

TEST_F(UnicastTest, DisabledInterfaceBreaksPath) {
  topo_.set_interface_enabled(b_, 1, false);  // b's link to c
  const auto ribs = compute_global_routes(topo_);
  EXPECT_EQ(ribs[a_].lookup(net::Ipv4Address(10, 3, 1, 7)), nullptr);
}

TEST_F(UnicastTest, NextHopNodeWalksPath) {
  EXPECT_EQ(next_hop_node(topo_, a_, c_), b_);
  EXPECT_EQ(next_hop_node(topo_, a_, b_), b_);
  EXPECT_EQ(next_hop_node(topo_, a_, a_), a_);
}

// --- Mfc ---------------------------------------------------------------------

TEST(Mfc, EnsureCreatesAndFindsEntries) {
  Mfc mfc;
  const net::Ipv4Address source(10, 1, 1, 2);
  MfcEntry& entry = mfc.ensure(source, kGroup, MfcMode::kDense, 1,
                               sim::TimePoint::from_ms(1000));
  EXPECT_EQ(entry.iif, 1u);
  EXPECT_EQ(mfc.size(), 1u);
  EXPECT_EQ(mfc.find(source, kGroup), &entry);
  // ensure() is idempotent and keeps existing state.
  entry.rate_kbps = 9.0;
  MfcEntry& again = mfc.ensure(source, kGroup, MfcMode::kDense, 1,
                               sim::TimePoint::from_ms(5000));
  EXPECT_EQ(again.rate_kbps, 9.0);
  EXPECT_EQ(again.created, sim::TimePoint::from_ms(1000));
}

TEST(Mfc, CountersAccrueAtRate) {
  Mfc mfc;
  const net::Ipv4Address source(10, 1, 1, 2);
  MfcEntry& entry = mfc.ensure(source, kGroup, MfcMode::kDense, 1,
                               sim::TimePoint::start());
  entry.rate_kbps = 80.0;  // 10 KB/s
  entry.advance(sim::TimePoint::start() + sim::Duration::seconds(10));
  EXPECT_EQ(entry.bytes, 100'000u);
  EXPECT_NEAR(static_cast<double>(entry.packets), 100'000.0 / 512.0, 1.0);
  // Average over lifetime.
  EXPECT_NEAR(entry.average_rate_kbps(sim::TimePoint::start() + sim::Duration::seconds(10)),
              80.0, 0.1);
}

TEST(Mfc, AdvanceIsIdempotentAtSameInstant) {
  Mfc mfc;
  const net::Ipv4Address source(10, 1, 1, 2);
  MfcEntry& entry = mfc.ensure(source, kGroup, MfcMode::kDense, 1,
                               sim::TimePoint::start());
  entry.rate_kbps = 80.0;
  const auto t = sim::TimePoint::start() + sim::Duration::seconds(5);
  entry.advance(t);
  const auto bytes = entry.bytes;
  entry.advance(t);
  EXPECT_EQ(entry.bytes, bytes);
}

TEST(Mfc, GroupCountAndTotalRate) {
  Mfc mfc;
  mfc.ensure(net::Ipv4Address(10, 1, 1, 2), kGroup, MfcMode::kDense, 1,
             sim::TimePoint::start())
      .rate_kbps = 10.0;
  mfc.ensure(net::Ipv4Address(10, 1, 1, 3), kGroup, MfcMode::kDense, 1,
             sim::TimePoint::start())
      .rate_kbps = 20.0;
  mfc.ensure(net::Ipv4Address(10, 1, 1, 2), net::Ipv4Address(224, 2, 0, 6),
             MfcMode::kSparse, 1, sim::TimePoint::start())
      .rate_kbps = 5.0;
  EXPECT_EQ(mfc.size(), 3u);
  EXPECT_EQ(mfc.group_count(), 2u);
  EXPECT_DOUBLE_EQ(mfc.total_rate_kbps(), 35.0);
}

// --- Integrated router over a tiny Network ------------------------------------

class RouterFixture : public ::testing::Test {
 protected:
  // r1 --- r2, with a host LAN on each side. DVMRP + PIM everywhere,
  // r1 is the RP.
  RouterFixture() : rng_(5), network_(engine_, topo_, rng_, NetworkConfig{}) {
    r1_ = topo_.add_router("r1");
    r2_ = topo_.add_router("r2");
    topo_.connect(r1_, r2_, P("192.168.0.0/30"));
    lan1_ = topo_.create_lan(P("10.1.1.0/24"));
    lan2_ = topo_.create_lan(P("10.2.1.0/24"));
    topo_.attach_to_lan(r1_, lan1_);
    topo_.attach_to_lan(r2_, lan2_);
    h1_ = topo_.add_host("h1");
    h2_ = topo_.add_host("h2");
    topo_.attach_to_lan(h1_, lan1_);
    topo_.attach_to_lan(h2_, lan2_);

    RouterConfig config;
    config.dvmrp_enabled = true;
    config.dvmrp.timers_enabled = false;
    config.pim_enabled = true;
    config.pim.timers_enabled = false;
    config.pim.rp_map = {{net::kMulticastRange, net::Ipv4Address(10, 1, 1, 1)}};
    config.igmp.timers_enabled = false;
    network_.add_router(r1_, config);
    network_.add_router(r2_, config);
    network_.start();
    // Exchange DVMRP reports once so RPF tables exist.
    network_.router(r1_)->dvmrp()->send_reports_now();
    network_.router(r2_)->dvmrp()->send_reports_now();
    engine_.run_until(engine_.now() + sim::Duration::seconds(2));
    network_.router(r1_)->dvmrp()->send_reports_now();
    network_.router(r2_)->dvmrp()->send_reports_now();
    engine_.run_until(engine_.now() + sim::Duration::seconds(2));
  }

  sim::Engine engine_;
  sim::Rng rng_;
  net::Topology topo_;
  Network network_;
  net::NodeId r1_, r2_, h1_, h2_;
  net::LinkId lan1_, lan2_;
};

TEST_F(RouterFixture, DvmrpRoutesConverge) {
  // r1 should know r2's LAN via the p2p link.
  const dvmrp::Route* route =
      network_.router(r1_)->dvmrp()->routes().rpf_lookup(net::Ipv4Address(10, 2, 1, 9));
  ASSERT_NE(route, nullptr);
  EXPECT_EQ(route->metric, 2);
}

TEST_F(RouterFixture, RpfDenseResolvesLocalAndRemote) {
  MulticastRouter* r1 = network_.router(r1_);
  const auto local = r1->rpf_dense(net::Ipv4Address(10, 1, 1, 2));
  ASSERT_TRUE(local.has_value());
  EXPECT_TRUE(local->neighbor.is_unspecified());  // directly connected

  const auto remote = r1->rpf_dense(net::Ipv4Address(10, 2, 1, 2));
  ASSERT_TRUE(remote.has_value());
  EXPECT_EQ(remote->neighbor, net::Ipv4Address(192, 168, 0, 2));
}

TEST_F(RouterFixture, RpfSparseUsesUnicastRib) {
  const auto rpf = network_.router(r1_)->rpf_sparse(net::Ipv4Address(10, 2, 1, 2));
  ASSERT_TRUE(rpf.has_value());
  EXPECT_EQ(rpf->neighbor, net::Ipv4Address(192, 168, 0, 2));
}

TEST_F(RouterFixture, DenseAcceptRpfFailureDrops) {
  MulticastRouter* r1 = network_.router(r1_);
  // Source on r1's own LAN but claimed to arrive from the p2p interface.
  const auto oifs = r1->dense_accept(net::Ipv4Address(10, 1, 1, 2), kGroup, 0);
  EXPECT_FALSE(oifs.has_value());
  EXPECT_EQ(r1->mfc().size(), 0u);
}

TEST_F(RouterFixture, DenseAcceptForwardsTowardDownstreamRouters) {
  MulticastRouter* r1 = network_.router(r1_);
  // Source on r1's LAN (ifindex 1), traffic should flood to r2 via if 0.
  const auto oifs = r1->dense_accept(net::Ipv4Address(10, 1, 1, 2), kGroup, 1);
  ASSERT_TRUE(oifs.has_value());
  EXPECT_EQ(oifs->count(0), 1u);
  EXPECT_EQ(r1->mfc().size(), 1u);
}

TEST_F(RouterFixture, LeafWithoutMembersPrunesUpstream) {
  MulticastRouter* r1 = network_.router(r1_);
  MulticastRouter* r2 = network_.router(r2_);
  // Flood order matters: r1 forwards first (creating its entry), then the
  // flow reaches r2, whose LAN has no members and no downstream routers ->
  // empty oifs and an upstream prune. (A prune for a still-unknown (S,G)
  // would be ignored, as in mrouted.)
  r1->dense_accept(net::Ipv4Address(10, 1, 1, 2), kGroup, 1);
  const auto oifs = r2->dense_accept(net::Ipv4Address(10, 1, 1, 2), kGroup, 0);
  ASSERT_TRUE(oifs.has_value());
  EXPECT_TRUE(oifs->empty());
  engine_.run_until(engine_.now() + sim::Duration::seconds(1));
  // r1 received the prune, recorded it, and stopped forwarding to r2.
  const MfcEntry* entry = r1->mfc().find(net::Ipv4Address(10, 1, 1, 2), kGroup);
  ASSERT_NE(entry, nullptr);
  EXPECT_FALSE(entry->prunes.empty());
  EXPECT_TRUE(entry->oifs.empty());
}

TEST_F(RouterFixture, GraftRestoresPrunedBranch) {
  MulticastRouter* r1 = network_.router(r1_);
  MulticastRouter* r2 = network_.router(r2_);
  const net::Ipv4Address source(10, 1, 1, 2);
  r1->dense_accept(source, kGroup, 1);
  r2->dense_accept(source, kGroup, 0);
  engine_.run_until(engine_.now() + sim::Duration::seconds(1));
  ASSERT_TRUE(r1->mfc().find(source, kGroup)->oifs.empty());

  // A member appears on r2's LAN -> graft flows upstream.
  network_.host_join(h2_, kGroup);
  engine_.run_until(engine_.now() + sim::Duration::seconds(2));
  EXPECT_EQ(r1->mfc().find(source, kGroup)->oifs.count(0), 1u);
  EXPECT_FALSE(r2->mfc().find(source, kGroup)->upstream_pruned);
}

TEST_F(RouterFixture, IsDrPicksLowestAddressOnSharedLan) {
  // Single router per LAN here, so both are DRs on their LAN interfaces.
  EXPECT_TRUE(network_.router(r1_)->is_dr(1));
  EXPECT_TRUE(network_.router(r2_)->is_dr(1));
}

TEST_F(RouterFixture, InterfaceNames) {
  EXPECT_EQ(network_.router(r1_)->interface_name(0), "eth0");
  EXPECT_EQ(network_.router(r1_)->interface_name(net::kInvalidIf), "Null0");
}

// --- CLI rendering -------------------------------------------------------------

TEST_F(RouterFixture, CliDvmrpRouteRendering) {
  const std::string text =
      cli::show_ip_dvmrp_route(*network_.router(r1_), engine_.now());
  EXPECT_NE(text.find("DVMRP Routing Table"), std::string::npos);
  EXPECT_NE(text.find("10.2.1.0/24"), std::string::npos);
  EXPECT_NE(text.find("via 192.168.0.2"), std::string::npos);
}

TEST_F(RouterFixture, CliMrouteRendersEntries) {
  network_.router(r1_)->dense_accept(net::Ipv4Address(10, 1, 1, 2), kGroup, 1);
  const std::string text = cli::show_ip_mroute(*network_.router(r1_), engine_.now());
  EXPECT_NE(text.find("(10.1.1.2, 224.2.0.5)"), std::string::npos);
  EXPECT_NE(text.find("Outgoing interface list"), std::string::npos);
}

TEST_F(RouterFixture, CliMrouteCountIncludesRates) {
  MulticastRouter* r1 = network_.router(r1_);
  r1->dense_accept(net::Ipv4Address(10, 1, 1, 2), kGroup, 1);
  r1->mfc().find(net::Ipv4Address(10, 1, 1, 2), kGroup)->rate_kbps = 123.5;
  const std::string text = cli::show_ip_mroute_count(*r1, engine_.now());
  EXPECT_NE(text.find("Group: 224.2.0.5"), std::string::npos);
  EXPECT_NE(text.find("/123.50"), std::string::npos);
}

TEST_F(RouterFixture, CliUnknownCommandYieldsIosError) {
  const std::string text =
      cli::execute_show(*network_.router(r1_), "show ip ospf", engine_.now());
  EXPECT_NE(text.find("% Invalid input"), std::string::npos);
}

TEST_F(RouterFixture, TelnetCaptureHasBannerAndPrompt) {
  const std::string text = cli::telnet_capture(*network_.router(r1_),
                                               "show ip mroute", engine_.now());
  EXPECT_NE(text.find("Password:"), std::string::npos);
  EXPECT_NE(text.find("r1>"), std::string::npos);
  EXPECT_NE(text.find("\r\n"), std::string::npos);
}

TEST(CliUptime, Formats) {
  EXPECT_EQ(cli::uptime_string(sim::Duration::seconds(3725)), "01:02:05");
  EXPECT_EQ(cli::uptime_string(sim::Duration::days(2) + sim::Duration::hours(3)),
            "2d03h");
}

}  // namespace
}  // namespace mantra::router
