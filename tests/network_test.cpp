#include <gtest/gtest.h>

#include "router/network.hpp"
#include "workload/scenario.hpp"

namespace mantra::router {
namespace {

const net::Ipv4Address kGroupRp0{224, 2, 0, 10};  // served by RP at domain 0
const net::Ipv4Address kGroupRp1{224, 4, 0, 10};  // served by RP at domain 1

/// Small protocol-faithful FIXW instance: 4 domains, real timers.
class NetworkIntegration : public ::testing::Test {
 protected:
  NetworkIntegration() : scenario_(make_config()) {
    scenario_.start();
    // Let DVMRP/MBGP converge (a few report rounds).
    scenario_.engine().run_until(sim::TimePoint::start() + sim::Duration::minutes(5));
  }

  static workload::ScenarioConfig make_config() {
    workload::ScenarioConfig config;
    config.seed = 3;
    config.domains = 4;
    config.hosts_per_domain = 3;
    config.dvmrp_prefixes_per_domain = 4;
    config.report_loss = 0.0;
    config.timer_scale = 1;
    config.full_timers = true;
    config.generator.session_arrivals_per_hour = 0.0;  // manual workload only
    config.generator.bursts_per_day = 0.0;
    return config;
  }

  net::NodeId host(int domain, int index) {
    // Hosts were attached after the border on each LAN; ids are stable:
    // border, h0, h1, h2 per domain. Resolve by name for clarity.
    const std::string name =
        (domain == 0 ? std::string("ucsb-gw") : "bdr" + std::to_string(domain)) +
        "-h" + std::to_string(index);
    for (const net::Node& node : scenario_.topology().nodes()) {
      if (node.name == name) return node.id;
    }
    return net::kInvalidNode;
  }

  void settle(sim::Duration d = sim::Duration::seconds(5)) {
    scenario_.engine().run_until(scenario_.engine().now() + d);
  }

  workload::FixwScenario scenario_;
};

TEST_F(NetworkIntegration, DvmrpConvergesAcrossDomains) {
  // FIXW sees every domain's stub prefixes.
  const MulticastRouter* fixw = scenario_.network().router(scenario_.fixw_node());
  const dvmrp::Route* route = fixw->dvmrp()->routes().rpf_lookup(
      net::Ipv4Address(10, 3, 17, 1));  // domain 3 stub
  ASSERT_NE(route, nullptr);
  // UCSB sees them through FIXW (metric one hop further).
  const MulticastRouter* ucsb = scenario_.network().router(scenario_.ucsb_node());
  const dvmrp::Route* remote = ucsb->dvmrp()->routes().rpf_lookup(
      net::Ipv4Address(10, 3, 17, 1));
  ASSERT_NE(remote, nullptr);
  EXPECT_GT(remote->metric, route->metric);
}

TEST_F(NetworkIntegration, MbgpFullMeshThroughHub) {
  for (int d = 0; d < 4; ++d) {
    const MulticastRouter* border =
        scenario_.network().router(scenario_.border_nodes()[d]);
    EXPECT_EQ(border->mbgp()->route_count(), 4u) << "domain " << d;
  }
}

TEST_F(NetworkIntegration, DenseFlowFloodsThenPrunesToActualReceivers) {
  Network& network = scenario_.network();
  const net::NodeId sender = host(1, 0);
  const net::NodeId receiver = host(2, 0);

  network.host_join(receiver, kGroupRp0);
  settle();
  network.flow_start(sender, kGroupRp0, 100.0, MfcMode::kDense);
  settle(sim::Duration::seconds(30));

  const Flow* flow = network.flow(network.host_address(sender), kGroupRp0);
  ASSERT_NE(flow, nullptr);
  // The flow reaches its receiver.
  EXPECT_EQ(flow->reached_hosts.count(receiver), 1u);
  // On-tree: sender's border, FIXW, receiver's border.
  EXPECT_EQ(flow->on_tree.count(scenario_.border_nodes()[1]), 1u);
  EXPECT_EQ(flow->on_tree.count(scenario_.fixw_node()), 1u);
  EXPECT_EQ(flow->on_tree.count(scenario_.border_nodes()[2]), 1u);
  // Domains without members pruned themselves off the tree.
  EXPECT_EQ(flow->on_tree.count(scenario_.border_nodes()[3]), 0u);

  // FIXW's forwarding entry carries the flow rate; the pruned domain's
  // border keeps a zero-rate entry (prune state) from the initial flood.
  const MfcEntry* at_fixw = network.router(scenario_.fixw_node())
                                ->mfc()
                                .find(network.host_address(sender), kGroupRp0);
  ASSERT_NE(at_fixw, nullptr);
  EXPECT_DOUBLE_EQ(at_fixw->rate_kbps, 100.0);
  const MfcEntry* at_idle = network.router(scenario_.border_nodes()[3])
                                ->mfc()
                                .find(network.host_address(sender), kGroupRp0);
  ASSERT_NE(at_idle, nullptr);
  EXPECT_DOUBLE_EQ(at_idle->rate_kbps, 0.0);
}

TEST_F(NetworkIntegration, DenseLateJoinerGraftsOntoTree) {
  Network& network = scenario_.network();
  const net::NodeId sender = host(1, 0);
  const net::NodeId late = host(3, 1);

  network.flow_start(sender, kGroupRp0, 64.0, MfcMode::kDense);
  settle(sim::Duration::seconds(30));  // floods, then everyone prunes

  const Flow* flow = network.flow(network.host_address(sender), kGroupRp0);
  ASSERT_NE(flow, nullptr);
  EXPECT_TRUE(flow->reached_hosts.empty());

  network.host_join(late, kGroupRp0);
  settle(sim::Duration::seconds(30));
  EXPECT_EQ(flow->reached_hosts.count(late), 1u);
  EXPECT_EQ(flow->on_tree.count(scenario_.border_nodes()[3]), 1u);
}

TEST_F(NetworkIntegration, SparseFlowReachesReceiverViaRpAndSpt) {
  Network& network = scenario_.network();
  const net::NodeId sender = host(2, 0);    // domain 2 (not an RP for group)
  const net::NodeId receiver = host(3, 0);  // domain 3

  network.set_group_plane(kGroupRp0, MfcMode::kSparse);
  network.host_join(receiver, kGroupRp0);   // receiver-domain RP terminates it
  settle();
  network.flow_start(sender, kGroupRp0, 200.0, MfcMode::kSparse);
  settle(sim::Duration::seconds(60));

  const Flow* flow = network.flow(network.host_address(sender), kGroupRp0);
  ASSERT_NE(flow, nullptr);
  EXPECT_EQ(flow->reached_hosts.count(receiver), 1u);
  // The receiver's border holds PIM state for the group.
  const MulticastRouter* last_hop = network.router(scenario_.border_nodes()[3]);
  EXPECT_NE(last_hop->pim()->find_star_g(kGroupRp0), nullptr);
}

TEST_F(NetworkIntegration, SparseSingleMemberSessionStaysLocal) {
  Network& network = scenario_.network();
  const net::NodeId solo = host(2, 1);
  // The host "participates" alone: joins and sends RTCP, nobody else cares.
  network.set_group_plane(kGroupRp1, MfcMode::kSparse);
  network.host_join(solo, kGroupRp1);
  settle();
  network.flow_start(solo, kGroupRp1, 2.0, MfcMode::kSparse);
  settle(sim::Duration::seconds(60));

  const Flow* flow = network.flow(network.host_address(solo), kGroupRp1);
  ASSERT_NE(flow, nullptr);
  // FIXW never sees this session: no receivers beyond the local domain.
  EXPECT_EQ(flow->on_tree.count(scenario_.fixw_node()), 0u);
  EXPECT_EQ(network.router(scenario_.fixw_node())
                ->mfc()
                .find(network.host_address(solo), kGroupRp1),
            nullptr);
}

TEST_F(NetworkIntegration, MsdpPropagatesSourceAcrossRpDomains) {
  Network& network = scenario_.network();
  // Sender under RP1 (domain 1 serves 224.4/16), receiver under RP0's
  // domain but for the *same* group: the receiver-side RP must learn the
  // source via MSDP... here group kGroupRp1 maps to RP1, receiver joins at
  // domain 3; RP1 is the single RP for the group, so MSDP's job is to tell
  // the *other* RPs. Verify SA caches on all three RPs.
  const net::NodeId sender = host(2, 2);
  network.flow_start(sender, kGroupRp1, 150.0, MfcMode::kSparse);
  settle(sim::Duration::seconds(30));

  int caches_with_sa = 0;
  for (int d = 0; d < 3; ++d) {
    const MulticastRouter* rp = network.router(scenario_.border_nodes()[d]);
    if (rp->msdp() != nullptr &&
        rp->msdp()->has_sa(network.host_address(sender), kGroupRp1)) {
      ++caches_with_sa;
    }
  }
  EXPECT_EQ(caches_with_sa, 3);  // origin RP + 2 peers
}

TEST_F(NetworkIntegration, FlowStopTearsDownStateAfterRetention) {
  Network& network = scenario_.network();
  const net::NodeId sender = host(1, 1);
  const net::NodeId receiver = host(2, 1);
  network.host_join(receiver, kGroupRp0);
  settle();
  network.flow_start(sender, kGroupRp0, 80.0, MfcMode::kDense);
  settle(sim::Duration::seconds(30));
  ASSERT_NE(network.router(scenario_.fixw_node())
                ->mfc()
                .find(network.host_address(sender), kGroupRp0),
            nullptr);

  network.flow_stop(sender, kGroupRp0);
  // Within the retention window the entry lingers at rate 0 (the monitor
  // still sees the session).
  settle(sim::Duration::seconds(10));
  const MfcEntry* lingering = network.router(scenario_.fixw_node())
                                  ->mfc()
                                  .find(network.host_address(sender), kGroupRp0);
  ASSERT_NE(lingering, nullptr);
  EXPECT_DOUBLE_EQ(lingering->rate_kbps, 0.0);

  settle(sim::Duration::minutes(11));  // past the 10-minute mfc retention
  EXPECT_EQ(network.router(scenario_.fixw_node())
                ->mfc()
                .find(network.host_address(sender), kGroupRp0),
            nullptr);
  EXPECT_EQ(network.flow(network.host_address(sender), kGroupRp0), nullptr);
}

TEST_F(NetworkIntegration, CountersAccrueWhileFlowRuns) {
  Network& network = scenario_.network();
  const net::NodeId sender = host(1, 2);
  const net::NodeId receiver = host(3, 2);
  network.host_join(receiver, kGroupRp0);
  settle();
  network.flow_start(sender, kGroupRp0, 800.0, MfcMode::kDense);  // 100 KB/s
  settle(sim::Duration::minutes(10));

  const MfcEntry* entry = network.router(scenario_.fixw_node())
                              ->mfc()
                              .find(network.host_address(sender), kGroupRp0);
  ASSERT_NE(entry, nullptr);
  entry->advance(scenario_.engine().now());
  // ~100 KB/s for ~10 minutes, minus tree-setup seconds.
  EXPECT_GT(entry->bytes, 50'000'000u);
  EXPECT_LT(entry->bytes, 70'000'000u);
}

TEST_F(NetworkIntegration, FlowRateChangePropagates) {
  Network& network = scenario_.network();
  const net::NodeId sender = host(1, 0);
  const net::NodeId receiver = host(2, 0);
  network.host_join(receiver, kGroupRp0);
  settle();
  network.flow_start(sender, kGroupRp0, 100.0, MfcMode::kDense);
  settle(sim::Duration::seconds(30));
  network.flow_set_rate(sender, kGroupRp0, 400.0);
  const MfcEntry* entry = network.router(scenario_.fixw_node())
                              ->mfc()
                              .find(network.host_address(sender), kGroupRp0);
  ASSERT_NE(entry, nullptr);
  EXPECT_DOUBLE_EQ(entry->rate_kbps, 400.0);
}

TEST_F(NetworkIntegration, FirstHopRouterIsDomainBorder) {
  EXPECT_EQ(scenario_.network().first_hop_router(host(2, 0)),
            scenario_.border_nodes()[2]);
}

TEST_F(NetworkIntegration, HostJoinIsIdempotent) {
  Network& network = scenario_.network();
  const net::NodeId receiver = host(2, 0);
  network.host_join(receiver, kGroupRp0);
  network.host_join(receiver, kGroupRp0);
  settle();
  const auto* members = network.group_members(kGroupRp0);
  ASSERT_NE(members, nullptr);
  EXPECT_EQ(members->size(), 1u);
  network.host_leave(receiver, kGroupRp0);
  settle();
  EXPECT_EQ(network.group_members(kGroupRp0), nullptr);
}

TEST_F(NetworkIntegration, ReportLossDestabilisesRoutes) {
  // Separate scenario with heavy loss: route counts at UCSB fluctuate.
  workload::ScenarioConfig config = make_config();
  config.report_loss = 0.35;
  config.seed = 11;
  workload::FixwScenario lossy(config);
  lossy.start();

  std::size_t min_routes = SIZE_MAX, max_routes = 0;
  for (int i = 0; i < 40; ++i) {
    lossy.engine().run_until(lossy.engine().now() + sim::Duration::minutes(2));
    const std::size_t n =
        lossy.network().router(lossy.ucsb_node())->dvmrp()->routes().valid_count();
    min_routes = std::min(min_routes, n);
    max_routes = std::max(max_routes, n);
  }
  EXPECT_LT(min_routes, max_routes);  // instability observed
}

}  // namespace
}  // namespace mantra::router
