#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sim/engine.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"

namespace mantra::sim {
namespace {

// --- Time ----------------------------------------------------------------

TEST(Duration, Factories) {
  EXPECT_EQ(Duration::seconds(2).total_ms(), 2000);
  EXPECT_EQ(Duration::minutes(3).total_ms(), 180'000);
  EXPECT_EQ(Duration::hours(1).total_ms(), 3'600'000);
  EXPECT_EQ(Duration::days(2).total_ms(), 172'800'000);
  EXPECT_EQ(Duration::from_seconds(1.5).total_ms(), 1500);
}

TEST(Duration, Arithmetic) {
  const Duration d = Duration::minutes(10) + Duration::seconds(30);
  EXPECT_DOUBLE_EQ(d.total_seconds(), 630.0);
  EXPECT_EQ((d - Duration::seconds(30)).total_ms(), 600'000);
  EXPECT_EQ((Duration::seconds(10) * std::int64_t{6}).total_ms(), 60'000);
  EXPECT_EQ((Duration::seconds(10) * 0.5).total_ms(), 5'000);
  EXPECT_EQ(Duration::minutes(10) / Duration::minutes(2), 5);
}

TEST(Duration, ToStringForms) {
  EXPECT_EQ(Duration::from_seconds(45.25).to_string(), "45.250s");
  EXPECT_EQ(Duration::hours(2).to_string(), "02:00:00");
  EXPECT_EQ((Duration::days(2) + Duration::hours(3)).to_string(), "2d 03:00:00");
}

TEST(TimePoint, ArithmeticAndComparison) {
  const TimePoint t0 = TimePoint::start();
  const TimePoint t1 = t0 + Duration::hours(5);
  EXPECT_GT(t1, t0);
  EXPECT_EQ((t1 - t0).total_hours(), 5.0);
  EXPECT_EQ((t1 - Duration::hours(5)), t0);
}

// --- Engine ----------------------------------------------------------------

TEST(Engine, RunsEventsInTimeOrder) {
  Engine engine;
  std::vector<int> order;
  engine.schedule_at(TimePoint::from_ms(30), [&] { order.push_back(3); });
  engine.schedule_at(TimePoint::from_ms(10), [&] { order.push_back(1); });
  engine.schedule_at(TimePoint::from_ms(20), [&] { order.push_back(2); });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Engine, SimultaneousEventsRunFifo) {
  Engine engine;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    engine.schedule_at(TimePoint::from_ms(10), [&order, i] { order.push_back(i); });
  }
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Engine, RunUntilAdvancesClockAndStops) {
  Engine engine;
  int fired = 0;
  engine.schedule_at(TimePoint::from_ms(100), [&] { ++fired; });
  engine.schedule_at(TimePoint::from_ms(300), [&] { ++fired; });
  EXPECT_EQ(engine.run_until(TimePoint::from_ms(200)), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(engine.now(), TimePoint::from_ms(200));
  EXPECT_EQ(engine.pending(), 1u);
  engine.run_until(TimePoint::from_ms(400));
  EXPECT_EQ(fired, 2);
}

TEST(Engine, EventsScheduledDuringRunAreHonoured) {
  Engine engine;
  std::vector<int> order;
  engine.schedule_at(TimePoint::from_ms(10), [&] {
    order.push_back(1);
    engine.schedule_after(Duration::milliseconds(5), [&] { order.push_back(2); });
  });
  engine.run_until(TimePoint::from_ms(20));
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Engine, CancelPreventsExecution) {
  Engine engine;
  int fired = 0;
  const EventId id = engine.schedule_at(TimePoint::from_ms(10), [&] { ++fired; });
  EXPECT_TRUE(engine.cancel(id));
  EXPECT_FALSE(engine.cancel(id));  // double cancel is a no-op
  engine.run();
  EXPECT_EQ(fired, 0);
}

TEST(Engine, SchedulingInThePastThrows) {
  Engine engine;
  engine.schedule_at(TimePoint::from_ms(50), [] {});
  engine.run();
  EXPECT_THROW(engine.schedule_at(TimePoint::from_ms(10), [] {}),
               std::invalid_argument);
}

TEST(Engine, StepProcessesOneEvent) {
  Engine engine;
  int fired = 0;
  engine.schedule_at(TimePoint::from_ms(1), [&] { ++fired; });
  engine.schedule_at(TimePoint::from_ms(2), [&] { ++fired; });
  EXPECT_TRUE(engine.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(engine.step());
  EXPECT_FALSE(engine.step());
}

TEST(Engine, RunRespectsMaxEvents) {
  Engine engine;
  int fired = 0;
  for (int i = 0; i < 10; ++i) {
    engine.schedule_at(TimePoint::from_ms(i), [&] { ++fired; });
  }
  EXPECT_EQ(engine.run(3), 3u);
  EXPECT_EQ(fired, 3);
}

TEST(PeriodicTimer, TicksAtPeriod) {
  Engine engine;
  int ticks = 0;
  PeriodicTimer timer(engine, Duration::seconds(10), [&] { ++ticks; });
  timer.start();
  engine.run_until(TimePoint::start() + Duration::seconds(35));
  EXPECT_EQ(ticks, 3);  // t=10, 20, 30
}

TEST(PeriodicTimer, StopEndsTicks) {
  Engine engine;
  int ticks = 0;
  PeriodicTimer timer(engine, Duration::seconds(10), [&] { ++ticks; });
  timer.start();
  engine.run_until(TimePoint::start() + Duration::seconds(15));
  timer.stop();
  EXPECT_FALSE(timer.running());
  engine.run_until(TimePoint::start() + Duration::seconds(100));
  EXPECT_EQ(ticks, 1);
}

TEST(PeriodicTimer, InitialDelayOverride) {
  Engine engine;
  int ticks = 0;
  PeriodicTimer timer(engine, Duration::seconds(10), [&] { ++ticks; });
  timer.start(Duration::seconds(1));
  engine.run_until(TimePoint::start() + Duration::seconds(2));
  EXPECT_EQ(ticks, 1);
}

// --- Rng / stats ------------------------------------------------------------

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(Rng, UniformIntWithinBounds) {
  Rng rng(7);
  for (int i = 0; i < 500; ++i) {
    const auto v = rng.uniform_int(3, 9);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 9);
  }
}

TEST(Rng, ExponentialMeanApproximatelyCorrect) {
  Rng rng(11);
  double total = 0.0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) total += rng.exponential(5.0);
  EXPECT_NEAR(total / n, 5.0, 0.2);
}

TEST(Rng, ParetoRespectsScaleMinimum) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(rng.pareto(1.2, 0.8), 0.8);
  }
}

TEST(Rng, ZipfRanksWithinRangeAndSkewed) {
  Rng rng(17);
  int first = 0;
  const int n = 10'000;
  for (int i = 0; i < n; ++i) {
    const auto rank = rng.zipf(10, 1.0);
    ASSERT_GE(rank, 1);
    ASSERT_LE(rank, 10);
    if (rank == 1) ++first;
  }
  // Rank 1 should dominate: expected share ~1/H(10) ~ 34%.
  EXPECT_GT(first, n / 5);
}

TEST(RunningStats, MeanVarianceMinMax) {
  RunningStats stats;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.add(v);
  EXPECT_EQ(stats.count(), 8u);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_NEAR(stats.stddev(), 2.138, 0.001);  // sample stddev
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
}

TEST(Quantile, MedianAndExtremes) {
  std::vector<double> values{5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(values, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(quantile(values, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(values, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile({}, 0.5), 0.0);
}

TEST(Quantile, InterpolatesBetweenPoints) {
  EXPECT_DOUBLE_EQ(quantile({0.0, 10.0}, 0.25), 2.5);
}

// The documented contract for the degenerate inputs MonitorStatus and the
// alert engine hit before any successful cycle: empty samples read as 0.0
// at every q (never UB or a throw), a single sample is every quantile of
// itself, and q outside [0, 1] clamps instead of indexing out of range.
TEST(Quantile, EmptyInputIsDefinedAsZero) {
  for (double q : {0.0, 0.25, 0.5, 0.95, 1.0, -3.0, 7.0}) {
    EXPECT_DOUBLE_EQ(quantile({}, q), 0.0) << "q=" << q;
  }
}

TEST(Quantile, SingleElementIsEveryQuantile) {
  for (double q : {0.0, 0.5, 0.95, 1.0}) {
    EXPECT_DOUBLE_EQ(quantile({42.0}, q), 42.0) << "q=" << q;
  }
}

TEST(Quantile, OutOfRangeQClamps) {
  std::vector<double> values{5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(quantile(values, -0.5), 1.0);
  EXPECT_DOUBLE_EQ(quantile(values, 2.0), 5.0);
}

namespace {

/// Reference implementation: full sort + linear interpolation — the
/// semantics both the old double-full-range selection and the current
/// partition-aware selection must reproduce exactly.
double quantile_by_sort(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  return values[lo] + (values[hi] - values[lo]) * (pos - static_cast<double>(lo));
}

}  // namespace

// Regression for the hi-element selection range: after the first
// nth_element, [0, lo] is already partitioned, so the second selection runs
// over [lo+1, end) only. Duplicate-heavy inputs are the adversarial case —
// many elements equal to the lo value may sit on either side of the
// partition point, and the hi pick must still equal the sorted hi element.
TEST(Quantile, DuplicateHeavyInputMatchesSortedReference) {
  const std::vector<double> duplicates{3.0, 3.0, 3.0, 1.0, 3.0, 3.0, 9.0,
                                       3.0, 3.0, 1.0, 3.0, 3.0, 3.0, 9.0};
  for (double q : {0.0, 0.05, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(quantile(duplicates, q), quantile_by_sort(duplicates, q))
        << "q=" << q;
  }
  // All-equal input: every quantile is the common value.
  const std::vector<double> flat(17, 4.25);
  for (double q : {0.0, 0.5, 0.95, 1.0}) {
    EXPECT_DOUBLE_EQ(quantile(flat, q), 4.25) << "q=" << q;
  }
}

// Two elements is the smallest input where lo and hi differ, i.e. where the
// upper-range selection actually runs (on a one-element range).
TEST(Quantile, TwoElementInputMatchesSortedReference) {
  const std::vector<double> pair{10.0, 0.0};  // deliberately unsorted
  for (double q : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0}) {
    EXPECT_DOUBLE_EQ(quantile(pair, q), quantile_by_sort(pair, q)) << "q=" << q;
    EXPECT_DOUBLE_EQ(quantile(pair, q), 10.0 * std::clamp(q, 0.0, 1.0));
  }
  const std::vector<double> equal_pair{7.0, 7.0};
  for (double q : {0.0, 0.5, 1.0}) {
    EXPECT_DOUBLE_EQ(quantile(equal_pair, q), 7.0) << "q=" << q;
  }
}

// The status-table p95s and alert quantile rules must not change: sweep a
// latency-shaped sample at the exact q values those surfaces use.
TEST(Quantile, StatusTableQuantilesUnchangedBySelectionRange) {
  std::vector<double> latencies;
  for (int i = 0; i < 97; ++i) {
    latencies.push_back(0.25 + 0.01 * static_cast<double>((i * 37) % 50));
  }
  for (double q : {0.5, 0.95, 0.99}) {
    EXPECT_DOUBLE_EQ(quantile(latencies, q), quantile_by_sort(latencies, q))
        << "q=" << q;
  }
}

}  // namespace
}  // namespace mantra::sim
