// Golden equivalence tests for the zero-copy parser layer: the in-place
// string_view parsers must produce exactly the rows and warnings the legacy
// ParseOutcome-returning entry points do, on clean captures, on truncated
// captures (every byte offset of one transcript), and on garbled captures.
// The legacy wrappers are deprecated; this file is their pinned consumer
// until they are removed.
#include <gtest/gtest.h>

#include <string>
#include <string_view>
#include <vector>

#include "core/collect.hpp"
#include "core/parse.hpp"
#include "core/transport.hpp"
#include "router/network.hpp"

namespace mantra::core {
namespace {

// The legacy path under test. Everything else in the tree has migrated to
// the in-place API, so the deprecation warnings are expected right here.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
ParseOutcome<PairTable> legacy_mroute_count(std::string_view text) {
  return parse_mroute_count(text);
}
ParseOutcome<RouteTable> legacy_dvmrp_route(std::string_view text) {
  return parse_dvmrp_route(text);
}
ParseOutcome<SaTable> legacy_msdp_sa_cache(std::string_view text) {
  return parse_msdp_sa_cache(text);
}
ParseOutcome<MbgpTable> legacy_mbgp(std::string_view text) {
  return parse_mbgp(text);
}
#pragma GCC diagnostic pop

// Runs one text through both paths for all four parsers and asserts the
// tables and warning lists are identical. `context` labels the failure.
void expect_paths_identical(std::string_view text, const std::string& context) {
  {
    PairTable table;
    std::vector<std::string> warnings;
    const std::size_t rows = parse_mroute_count(text, table, &warnings);
    const auto legacy = legacy_mroute_count(text);
    EXPECT_EQ(rows, table.size()) << context;
    EXPECT_TRUE(table == legacy.table) << "mroute_count rows differ: " << context;
    EXPECT_EQ(warnings, legacy.warnings) << "mroute_count warnings differ: " << context;
  }
  {
    RouteTable table;
    std::vector<std::string> warnings;
    const std::size_t rows = parse_dvmrp_route(text, table, &warnings);
    const auto legacy = legacy_dvmrp_route(text);
    EXPECT_EQ(rows, table.size()) << context;
    EXPECT_TRUE(table == legacy.table) << "dvmrp_route rows differ: " << context;
    EXPECT_EQ(warnings, legacy.warnings) << "dvmrp_route warnings differ: " << context;
  }
  {
    SaTable table;
    std::vector<std::string> warnings;
    const std::size_t rows = parse_msdp_sa_cache(text, table, &warnings);
    const auto legacy = legacy_msdp_sa_cache(text);
    EXPECT_EQ(rows, table.size()) << context;
    EXPECT_TRUE(table == legacy.table) << "msdp_sa_cache rows differ: " << context;
    EXPECT_EQ(warnings, legacy.warnings) << "msdp_sa_cache warnings differ: " << context;
  }
  {
    MbgpTable table;
    std::vector<std::string> warnings;
    const std::size_t rows = parse_mbgp(text, table, &warnings);
    const auto legacy = legacy_mbgp(text);
    EXPECT_EQ(rows, table.size()) << context;
    EXPECT_TRUE(table == legacy.table) << "mbgp rows differ: " << context;
    EXPECT_EQ(warnings, legacy.warnings) << "mbgp warnings differ: " << context;
  }
}

// A small live network so the fixture captures carry real table volume:
// two routers, a LAN with one host, one active flow.
class ParseGolden : public ::testing::Test {
 protected:
  ParseGolden() : rng_(7), network_(engine_, topo_, rng_, router::NetworkConfig{}) {
    r1_ = topo_.add_router("r1");
    r2_ = topo_.add_router("r2");
    topo_.connect(r1_, r2_, *net::Prefix::parse("192.168.0.0/30"));
    const auto lan = topo_.create_lan(*net::Prefix::parse("10.1.1.0/24"));
    topo_.attach_to_lan(r1_, lan);
    host_ = topo_.add_host("h1");
    topo_.attach_to_lan(host_, lan);

    router::RouterConfig config;
    config.dvmrp_enabled = true;
    config.dvmrp.timers_enabled = false;
    config.pim_enabled = true;
    config.pim.timers_enabled = false;
    config.pim.rp_map = {{net::kMulticastRange, net::Ipv4Address(10, 1, 1, 1)}};
    config.igmp.timers_enabled = false;
    network_.add_router(r1_, config);
    network_.add_router(r2_, config);
    network_.start();
    network_.router(r1_)->dvmrp()->send_reports_now();
    network_.router(r2_)->dvmrp()->send_reports_now();
    network_.host_join(host_, net::Ipv4Address(224, 2, 0, 5));
    network_.flow_start(host_, net::Ipv4Address(224, 2, 0, 5), 100.0,
                        router::MfcMode::kDense);
    engine_.run_until(engine_.now() + sim::Duration::minutes(10));
  }

  /// Clean preprocessed capture of `command` against r1.
  [[nodiscard]] std::string clean_capture(const std::string& command) {
    const CaptureReport& report =
        collector_.capture(*network_.router(r1_), engine_.now());
    const RawCapture* capture = report.find(command);
    EXPECT_NE(capture, nullptr) << command;
    return capture != nullptr ? capture->clean_text : std::string();
  }

  sim::Engine engine_;
  sim::Rng rng_;
  net::Topology topo_;
  router::Network network_;
  Collector collector_;
  net::NodeId r1_, r2_, host_;
};

TEST_F(ParseGolden, CleanCapturesParseIdentically) {
  for (const char* command :
       {"show ip mroute count", "show ip dvmrp route", "show ip msdp sa-cache",
        "show ip mbgp"}) {
    expect_paths_identical(clean_capture(command), command);
  }
}

TEST_F(ParseGolden, EveryByteOffsetTruncationParsesIdentically) {
  // Truncate the raw (pre-preprocess) transcript at every byte offset, run
  // the truncated bytes through preprocess and then both parser paths. This
  // covers cuts mid-header, mid-token, mid-number, and mid-CRLF.
  const CaptureReport& report =
      collector_.capture(*network_.router(r1_), engine_.now());
  const RawCapture* capture = report.find("show ip mroute count");
  ASSERT_NE(capture, nullptr);
  const std::string raw = capture->raw_text;
  ASSERT_GT(raw.size(), 0u);

  std::string clean;
  for (std::size_t cut = 0; cut <= raw.size(); ++cut) {
    preprocess_into(std::string_view(raw).substr(0, cut), clean);
    expect_paths_identical(clean, "cut at byte " + std::to_string(cut));
    if (::testing::Test::HasFailure()) break;  // one offset is enough to debug
  }
}

TEST_F(ParseGolden, GarbledCapturesParseIdentically) {
  // Garble every command over several seeds; interleaved noise must push
  // both parser paths into exactly the same rows and warnings.
  for (const unsigned seed : {3u, 11u, 42u, 1999u}) {
    FaultProfile profile;
    profile.garble_p = 1.0;
    FaultInjectingTransport transport(seed, profile);
    ASSERT_TRUE(transport.connect(*network_.router(r1_), engine_.now()).ok());
    for (const char* command :
         {"show ip mroute count", "show ip dvmrp route",
          "show ip msdp sa-cache", "show ip mbgp"}) {
      const TransportResult result =
          transport.execute(*network_.router(r1_), command, engine_.now());
      ASSERT_EQ(result.status, TransportStatus::garbled) << command;
      expect_paths_identical(preprocess(result.text),
                             std::string(command) + " seed " + std::to_string(seed));
    }
  }
}

TEST_F(ParseGolden, TruncatedTransportCapturesParseIdentically) {
  // The fault transport's truncation (cut mid-table at a seeded offset) is a
  // different distribution from the exhaustive byte sweep; cover it too.
  for (const unsigned seed : {5u, 23u, 77u}) {
    FaultProfile profile;
    profile.truncate_p = 1.0;
    FaultInjectingTransport transport(seed, profile);
    ASSERT_TRUE(transport.connect(*network_.router(r1_), engine_.now()).ok());
    for (const char* command :
         {"show ip mroute count", "show ip dvmrp route",
          "show ip msdp sa-cache", "show ip mbgp"}) {
      const TransportResult result =
          transport.execute(*network_.router(r1_), command, engine_.now());
      ASSERT_EQ(result.status, TransportStatus::truncated) << command;
      expect_paths_identical(preprocess(result.text),
                             std::string(command) + " seed " + std::to_string(seed));
    }
  }
}

}  // namespace
}  // namespace mantra::core
