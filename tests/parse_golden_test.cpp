// Golden reuse tests for the zero-copy parser layer: parsing into a dirty,
// reused table (rows and capacity left over from an unrelated previous
// parse) and an already-populated warnings vector must produce exactly what
// a fresh table and vector do — same rows, warnings appended in the same
// order after the preexisting ones. This is the contract the warmed-up
// collection hot path depends on; it is exercised on clean captures, on
// truncated captures (every byte offset of one transcript), and on garbled
// captures.
#include <gtest/gtest.h>

#include <string>
#include <string_view>
#include <vector>

#include "core/collect.hpp"
#include "core/parse.hpp"
#include "core/transport.hpp"
#include "router/network.hpp"

namespace mantra::core {
namespace {

/// Tables and a warnings vector reused across every parse in a test — each
/// call sees whatever rows and capacity the previous text left behind, plus
/// a sentinel warning that the parser must preserve (warnings are appended,
/// never cleared).
struct ReusedScratch {
  PairTable pairs;
  RouteTable routes;
  SaTable sa_cache;
  MbgpTable mbgp;
  std::vector<std::string> warnings;
};

constexpr const char* kSentinel = "preexisting warning";

/// Parses `text` with one parser into a fresh table/vector and into the
/// reused scratch, asserting identical rows and appended-in-order warnings.
template <typename TableType, typename ParseFn>
void expect_reuse_identical(ParseFn parse, std::string_view text,
                            TableType& reused, ReusedScratch& scratch,
                            const char* parser, const std::string& context) {
  TableType fresh;
  std::vector<std::string> fresh_warnings;
  const std::size_t fresh_rows = parse(text, fresh, &fresh_warnings);

  scratch.warnings.assign({kSentinel});
  const std::size_t reused_rows = parse(text, reused, &scratch.warnings);

  EXPECT_EQ(fresh_rows, fresh.size()) << parser << ": " << context;
  EXPECT_EQ(reused_rows, fresh_rows) << parser << ": " << context;
  EXPECT_TRUE(reused == fresh) << parser << " rows differ after reuse: " << context;
  ASSERT_FALSE(scratch.warnings.empty()) << parser << ": " << context;
  EXPECT_EQ(scratch.warnings.front(), kSentinel)
      << parser << " clobbered preexisting warnings: " << context;
  EXPECT_EQ(std::vector<std::string>(scratch.warnings.begin() + 1,
                                     scratch.warnings.end()),
            fresh_warnings)
      << parser << " warnings differ after reuse: " << context;
}

// Runs one text through all four parsers, fresh vs reused. `context` labels
// the failure.
void expect_paths_identical(std::string_view text, ReusedScratch& scratch,
                            const std::string& context) {
  expect_reuse_identical(
      [](std::string_view t, PairTable& table, std::vector<std::string>* w) {
        return parse_mroute_count(t, table, w);
      },
      text, scratch.pairs, scratch, "mroute_count", context);
  expect_reuse_identical(
      [](std::string_view t, RouteTable& table, std::vector<std::string>* w) {
        return parse_dvmrp_route(t, table, w);
      },
      text, scratch.routes, scratch, "dvmrp_route", context);
  expect_reuse_identical(
      [](std::string_view t, SaTable& table, std::vector<std::string>* w) {
        return parse_msdp_sa_cache(t, table, w);
      },
      text, scratch.sa_cache, scratch, "msdp_sa_cache", context);
  expect_reuse_identical(
      [](std::string_view t, MbgpTable& table, std::vector<std::string>* w) {
        return parse_mbgp(t, table, w);
      },
      text, scratch.mbgp, scratch, "mbgp", context);
}

// A small live network so the fixture captures carry real table volume:
// two routers, a LAN with one host, one active flow.
class ParseGolden : public ::testing::Test {
 protected:
  ParseGolden() : rng_(7), network_(engine_, topo_, rng_, router::NetworkConfig{}) {
    r1_ = topo_.add_router("r1");
    r2_ = topo_.add_router("r2");
    topo_.connect(r1_, r2_, *net::Prefix::parse("192.168.0.0/30"));
    const auto lan = topo_.create_lan(*net::Prefix::parse("10.1.1.0/24"));
    topo_.attach_to_lan(r1_, lan);
    host_ = topo_.add_host("h1");
    topo_.attach_to_lan(host_, lan);

    router::RouterConfig config;
    config.dvmrp_enabled = true;
    config.dvmrp.timers_enabled = false;
    config.pim_enabled = true;
    config.pim.timers_enabled = false;
    config.pim.rp_map = {{net::kMulticastRange, net::Ipv4Address(10, 1, 1, 1)}};
    config.igmp.timers_enabled = false;
    network_.add_router(r1_, config);
    network_.add_router(r2_, config);
    network_.start();
    network_.router(r1_)->dvmrp()->send_reports_now();
    network_.router(r2_)->dvmrp()->send_reports_now();
    network_.host_join(host_, net::Ipv4Address(224, 2, 0, 5));
    network_.flow_start(host_, net::Ipv4Address(224, 2, 0, 5), 100.0,
                        router::MfcMode::kDense);
    engine_.run_until(engine_.now() + sim::Duration::minutes(10));

    // Start the reused tables dirty: rows that no fixture capture contains,
    // so a parser that merely appends (instead of clearing first) fails.
    scratch_.pairs.upsert({net::Ipv4Address(203, 0, 113, 9),
                           net::Ipv4Address(239, 255, 255, 250), 1.0, 1.0, 1,
                           sim::Duration::seconds(1)});
    scratch_.routes.upsert({*net::Prefix::parse("198.51.100.0/24"),
                            net::Ipv4Address(203, 0, 113, 1), "stale0", 7,
                            sim::Duration::seconds(1), true});
    scratch_.sa_cache.upsert({net::Ipv4Address(203, 0, 113, 9),
                              net::Ipv4Address(239, 255, 255, 250),
                              net::Ipv4Address(203, 0, 113, 1),
                              net::Ipv4Address(203, 0, 113, 2),
                              sim::Duration::seconds(1)});
    scratch_.mbgp.upsert({*net::Prefix::parse("198.51.100.0/24"),
                          net::Ipv4Address(203, 0, 113, 1), "64496 64497"});
  }

  /// Clean preprocessed capture of `command` against r1.
  [[nodiscard]] std::string clean_capture(const std::string& command) {
    const CaptureReport& report =
        collector_.capture(*network_.router(r1_), engine_.now());
    const RawCapture* capture = report.find(command);
    EXPECT_NE(capture, nullptr) << command;
    return capture != nullptr ? capture->clean_text : std::string();
  }

  sim::Engine engine_;
  sim::Rng rng_;
  net::Topology topo_;
  router::Network network_;
  Collector collector_;
  net::NodeId r1_, r2_, host_;
  ReusedScratch scratch_;
};

TEST_F(ParseGolden, CleanCapturesParseIdentically) {
  for (const char* command :
       {"show ip mroute count", "show ip dvmrp route", "show ip msdp sa-cache",
        "show ip mbgp"}) {
    expect_paths_identical(clean_capture(command), scratch_, command);
  }
}

TEST_F(ParseGolden, EveryByteOffsetTruncationParsesIdentically) {
  // Truncate the raw (pre-preprocess) transcript at every byte offset, run
  // the truncated bytes through preprocess and then both parser paths. This
  // covers cuts mid-header, mid-token, mid-number, and mid-CRLF.
  const CaptureReport& report =
      collector_.capture(*network_.router(r1_), engine_.now());
  const RawCapture* capture = report.find("show ip mroute count");
  ASSERT_NE(capture, nullptr);
  const std::string raw = capture->raw_text;
  ASSERT_GT(raw.size(), 0u);

  std::string clean;
  for (std::size_t cut = 0; cut <= raw.size(); ++cut) {
    preprocess_into(std::string_view(raw).substr(0, cut), clean);
    expect_paths_identical(clean, scratch_, "cut at byte " + std::to_string(cut));
    if (::testing::Test::HasFailure()) break;  // one offset is enough to debug
  }
}

TEST_F(ParseGolden, GarbledCapturesParseIdentically) {
  // Garble every command over several seeds; interleaved noise must push
  // both parser paths into exactly the same rows and warnings.
  for (const unsigned seed : {3u, 11u, 42u, 1999u}) {
    FaultProfile profile;
    profile.garble_p = 1.0;
    FaultInjectingTransport transport(seed, profile);
    ASSERT_TRUE(transport.connect(*network_.router(r1_), engine_.now()).ok());
    for (const char* command :
         {"show ip mroute count", "show ip dvmrp route",
          "show ip msdp sa-cache", "show ip mbgp"}) {
      const TransportResult result =
          transport.execute(*network_.router(r1_), command, engine_.now());
      ASSERT_EQ(result.status, TransportStatus::garbled) << command;
      expect_paths_identical(preprocess(result.text), scratch_,
                             std::string(command) + " seed " + std::to_string(seed));
    }
  }
}

TEST_F(ParseGolden, TruncatedTransportCapturesParseIdentically) {
  // The fault transport's truncation (cut mid-table at a seeded offset) is a
  // different distribution from the exhaustive byte sweep; cover it too.
  for (const unsigned seed : {5u, 23u, 77u}) {
    FaultProfile profile;
    profile.truncate_p = 1.0;
    FaultInjectingTransport transport(seed, profile);
    ASSERT_TRUE(transport.connect(*network_.router(r1_), engine_.now()).ok());
    for (const char* command :
         {"show ip mroute count", "show ip dvmrp route",
          "show ip msdp sa-cache", "show ip mbgp"}) {
      const TransportResult result =
          transport.execute(*network_.router(r1_), command, engine_.now());
      ASSERT_EQ(result.status, TransportStatus::truncated) << command;
      expect_paths_identical(preprocess(result.text), scratch_,
                             std::string(command) + " seed " + std::to_string(seed));
    }
  }
}

}  // namespace
}  // namespace mantra::core
