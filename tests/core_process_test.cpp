#include <gtest/gtest.h>

#include <random>

#include "core/process.hpp"

namespace mantra::core {
namespace {

PairRow pair(std::uint32_t source, std::uint32_t group, double kbps) {
  PairRow row;
  row.source = net::Ipv4Address(0x0A000000u + source);
  row.group = net::Ipv4Address(0xE0020000u + group);
  row.current_kbps = kbps;
  return row;
}

RouteRow route(std::uint32_t net_index, int metric = 3, bool holddown = false) {
  RouteRow row;
  row.prefix = net::Prefix(net::Ipv4Address(0x0A000000u + (net_index << 8)), 24);
  row.next_hop = net::Ipv4Address(0xC0A80002u);
  row.metric = metric;
  row.holddown = holddown;
  return row;
}

Snapshot make_snapshot() {
  Snapshot snapshot;
  snapshot.router_name = "fixw";
  // Session 1: two participants, one sender (active).
  snapshot.pairs.upsert(pair(1, 1, 100.0));
  snapshot.pairs.upsert(pair(2, 1, 2.0));
  // Session 2: single passive member (inactive, single-member).
  snapshot.pairs.upsert(pair(3, 2, 1.0));
  // Session 3: three passive members.
  snapshot.pairs.upsert(pair(4, 3, 0.5));
  snapshot.pairs.upsert(pair(5, 3, 0.5));
  snapshot.pairs.upsert(pair(6, 3, 3.0));
  snapshot.participants = derive_participants(snapshot.pairs);
  snapshot.sessions = derive_sessions(snapshot.pairs);
  return snapshot;
}

TEST(ComputeUsage, CountsAndClassifications) {
  const UsageStats stats = compute_usage(make_snapshot());
  EXPECT_EQ(stats.sessions, 3);
  EXPECT_EQ(stats.participants, 6);
  EXPECT_EQ(stats.active_sessions, 1);
  EXPECT_EQ(stats.senders, 1);
  EXPECT_EQ(stats.single_member_sessions, 1);
  EXPECT_DOUBLE_EQ(stats.avg_density, 2.0);
  EXPECT_DOUBLE_EQ(stats.bandwidth_kbps, 107.0);
  EXPECT_NEAR(stats.pct_sessions_active, 33.33, 0.01);
  EXPECT_NEAR(stats.pct_participants_senders, 16.67, 0.01);
}

TEST(ComputeUsage, BandwidthSavedUsesDensityTimesRate) {
  const UsageStats stats = compute_usage(make_snapshot());
  // Active session 1: density 2, total 102 kbps -> unicast equivalent 204.
  EXPECT_DOUBLE_EQ(stats.unicast_equivalent_kbps, 204.0);
  EXPECT_NEAR(stats.saved_multiple, 204.0 / 107.0, 1e-9);
}

TEST(ComputeUsage, EmptySnapshotIsAllZero) {
  const UsageStats stats = compute_usage(Snapshot{});
  EXPECT_EQ(stats.sessions, 0);
  EXPECT_EQ(stats.participants, 0);
  EXPECT_DOUBLE_EQ(stats.saved_multiple, 0.0);
}

TEST(ComputeUsage, DerivesTablesWhenAbsent) {
  Snapshot snapshot;
  snapshot.pairs.upsert(pair(1, 1, 50.0));
  const UsageStats stats = compute_usage(snapshot);  // derived internally
  EXPECT_EQ(stats.sessions, 1);
  EXPECT_EQ(stats.senders, 1);
}

TEST(DensityDistribution, SkewFacts) {
  SessionTable sessions;
  // 8 single-member, 1 with two members, 1 with 40 members.
  for (int i = 0; i < 8; ++i) {
    SessionRow row;
    row.group = net::Ipv4Address(0xE0020000u + i);
    row.density = 1;
    sessions.upsert(row);
  }
  SessionRow two;
  two.group = net::Ipv4Address(0xE0020100u);
  two.density = 2;
  sessions.upsert(two);
  SessionRow big;
  big.group = net::Ipv4Address(0xE0020200u);
  big.density = 40;
  sessions.upsert(big);

  const DensityDistribution dist = compute_density_distribution(sessions);
  EXPECT_EQ(dist.sessions, 10u);
  EXPECT_DOUBLE_EQ(dist.fraction_single_member, 0.8);
  EXPECT_DOUBLE_EQ(dist.fraction_at_most_two, 0.9);
  // 50 participants total; the big session alone holds 80%: share = 1/10.
  EXPECT_DOUBLE_EQ(dist.top_session_share_for_80pct, 0.1);
}

TEST(DensityDistribution, EmptyTable) {
  const DensityDistribution dist = compute_density_distribution(SessionTable{});
  EXPECT_EQ(dist.sessions, 0u);
}

TEST(RouteMonitor, TracksCountsChangesAndLifetimes) {
  RouteMonitor monitor;
  RouteTable t0;
  t0.upsert(route(1));
  t0.upsert(route(2));
  monitor.observe(sim::TimePoint::start(), t0);

  RouteTable t1 = t0;
  t1.upsert(route(3));  // new route
  monitor.observe(sim::TimePoint::start() + sim::Duration::minutes(15), t1);

  RouteTable t2 = t1;
  t2.erase(route(2).key());  // route 2 lived 30 minutes
  monitor.observe(sim::TimePoint::start() + sim::Duration::minutes(30), t2);

  ASSERT_EQ(monitor.history().size(), 3u);
  EXPECT_EQ(monitor.history()[0].total, 2u);
  EXPECT_EQ(monitor.history()[1].changes, 1u);
  EXPECT_EQ(monitor.history()[2].changes, 1u);
  EXPECT_EQ(monitor.total_changes(), 2u);
  EXPECT_EQ(monitor.completed_route_count(), 1u);
  EXPECT_DOUBLE_EQ(monitor.mean_completed_lifetime_s(), 1800.0);
}

TEST(RouteMonitor, ValidCountExcludesHolddown) {
  RouteMonitor monitor;
  RouteTable table;
  table.upsert(route(1));
  table.upsert(route(2, 32, /*holddown=*/true));
  monitor.observe(sim::TimePoint::start(), table);
  EXPECT_EQ(monitor.history()[0].total, 2u);
  EXPECT_EQ(monitor.history()[0].valid, 1u);
}

TEST(CompareRouteTables, ConsistencyStats) {
  RouteTable a, b;
  a.upsert(route(1));
  a.upsert(route(2));
  a.upsert(route(3));
  b.upsert(route(2));
  b.upsert(route(3));
  b.upsert(route(4));
  const ConsistencyStats stats = compare_route_tables(a, b);
  EXPECT_EQ(stats.common, 2u);
  EXPECT_EQ(stats.only_a, 1u);
  EXPECT_EQ(stats.only_b, 1u);
  EXPECT_DOUBLE_EQ(stats.jaccard, 0.5);
}

TEST(CompareRouteTables, IdenticalTablesAreConsistent) {
  RouteTable a;
  a.upsert(route(1));
  const ConsistencyStats stats = compare_route_tables(a, a);
  EXPECT_DOUBLE_EQ(stats.jaccard, 1.0);
  EXPECT_DOUBLE_EQ(compare_route_tables(RouteTable{}, RouteTable{}).jaccard, 1.0);
}

TEST(SpikeDetector, FlagsJumpAboveNoise) {
  SpikeDetector detector(48, 10.0, 3.0);
  std::mt19937 rng(3);
  // Baseline around 600 routes with small flaps.
  for (int i = 0; i < 48; ++i) {
    const auto verdict = detector.observe(600.0 + static_cast<double>(rng() % 11) - 5.0);
    EXPECT_FALSE(verdict.spike);
  }
  // Unicast injection: +1500 routes.
  const auto verdict = detector.observe(2100.0);
  EXPECT_TRUE(verdict.spike);
  EXPECT_GT(verdict.score, 10.0);
}

TEST(SpikeDetector, DoesNotFlagGradualDrift) {
  SpikeDetector detector(48, 10.0, 3.0);
  double value = 600.0;
  bool any_spike = false;
  for (int i = 0; i < 200; ++i) {
    value += 1.0;  // slow growth
    any_spike |= detector.observe(value).spike;
  }
  EXPECT_FALSE(any_spike);
}

TEST(SpikeDetector, SpikesExcludedFromBaseline) {
  SpikeDetector detector(16, 8.0, 3.0);
  for (int i = 0; i < 16; ++i) detector.observe(100.0);
  EXPECT_TRUE(detector.observe(5000.0).spike);
  // The plateau after the jump still reads anomalous (the spike did not
  // poison the baseline window).
  EXPECT_TRUE(detector.observe(5000.0).spike);
}

TEST(SpikeDetector, NeedsMinimalBaseline) {
  SpikeDetector detector;
  for (int i = 0; i < 7; ++i) {
    EXPECT_FALSE(detector.observe(1e9).spike);  // warming up
  }
}

TEST(SpikeDetector, SmallWindowStillDetects) {
  // Regression: the window trim keeps at most `window` samples, so a fixed
  // baseline gate of 8 left any spike_window < 8 permanently dead — the
  // detector accumulated 4 samples, never reached 8, and never activated.
  SpikeDetector detector(4, 10.0, 3.0);
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(detector.observe(600.0).spike) << "sample " << i;
  }
  const auto verdict = detector.observe(2100.0);
  EXPECT_TRUE(verdict.spike);
  EXPECT_GT(verdict.score, 10.0);
}

TEST(SpikeDetector, PersistentShiftIsAcceptedAsNewRegime) {
  SpikeDetector detector(16, 8.0, 3.0);
  for (int i = 0; i < 16; ++i) detector.observe(100.0);

  // A level shift alarms for regime_threshold (12) consecutive cycles, then
  // the detector accepts the new level and re-seeds its baseline.
  for (int i = 0; i < 12; ++i) {
    EXPECT_TRUE(detector.observe(5000.0).spike) << "cycle " << i;
  }
  EXPECT_EQ(detector.regime_resets(), 1u);

  // The re-seeded baseline treats the new level as normal: once it has
  // warmed back up, steady samples at 5000 no longer alarm...
  bool post_reset_spike = false;
  for (int i = 0; i < 16; ++i) post_reset_spike |= detector.observe(5000.0).spike;
  EXPECT_FALSE(post_reset_spike);
  EXPECT_EQ(detector.regime_resets(), 1u);

  // ...and a fresh jump from the new regime is still caught.
  EXPECT_TRUE(detector.observe(20000.0).spike);
}

TEST(SpikeDetector, BriefPlateauDoesNotResetBaseline) {
  SpikeDetector detector(16, 8.0, 3.0);
  for (int i = 0; i < 16; ++i) detector.observe(100.0);

  // 11 consecutive anomalies — one short of the regime threshold — then a
  // return to the old level: no reset, and the old baseline still stands.
  for (int i = 0; i < 11; ++i) {
    EXPECT_TRUE(detector.observe(5000.0).spike);
  }
  EXPECT_FALSE(detector.observe(100.0).spike);
  EXPECT_EQ(detector.regime_resets(), 0u);
  EXPECT_TRUE(detector.observe(5000.0).spike);  // anomalous again
}

}  // namespace
}  // namespace mantra::core
