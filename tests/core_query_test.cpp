// core/query: the read-optimized serving layer. The load-bearing claims
// under test: (1) a rollup-served coarse query returns exactly what a raw
// delta scan over the same range returns, while decoding zero archive
// records; (2) raw range scans prune to the key-frame blocks the range
// touches and match the replay pipeline's numbers cycle for cycle; (3) the
// sharded LRU block cache evicts in recency order, counts hits/misses/
// evictions exactly, and survives a multithreaded hammer (tsan); (4) a
// sidecar whose fingerprint does not match its archive is rejected, and
// compaction rebuilds rollups from the surviving cycles only.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "core/archive.hpp"
#include "core/query.hpp"

namespace mantra::core {
namespace {

constexpr auto kCycle = sim::Duration::minutes(15);

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

PairRow pair(std::uint32_t source, std::uint32_t group, double kbps) {
  PairRow row;
  row.source = net::Ipv4Address(source);
  row.group = net::Ipv4Address(0xE0020000u + group);
  row.current_kbps = kbps;
  return row;
}

RouteRow route(std::uint32_t net_index, int metric) {
  RouteRow row;
  row.prefix = net::Prefix(net::Ipv4Address(0x0A000000u + (net_index << 8)), 24);
  row.next_hop = net::Ipv4Address(0xC0A80002u);
  row.interface = "tunnel0";
  row.metric = metric;
  row.holddown = net_index % 5 == 0;
  return row;
}

SaRow sa(std::uint32_t source, std::uint32_t group) {
  SaRow row;
  row.source = net::Ipv4Address(source);
  row.group = net::Ipv4Address(0xE0020000u + group);
  row.origin_rp = net::Ipv4Address(10, 0, 1, 1);
  row.via_peer = net::Ipv4Address(10, 0, 2, 1);
  return row;
}

ArchiveCycleMeta meta_for(int cycle) {
  ArchiveCycleMeta meta;
  meta.stale = cycle % 5 == 0;
  meta.collection_failures = cycle % 7 == 0 ? 1u : 0u;
  meta.parse_warnings = static_cast<std::uint32_t>(cycle % 3);
  meta.collection_latency = sim::Duration::seconds(1 + cycle % 9);
  return meta;
}

/// Writes a churning synthetic archive: `cycles` cycles at 15-minute spacing,
/// route flaps and rate changes every cycle so deltas are non-trivial.
void write_archive(const std::string& path, int cycles,
                   int keyframe_interval = 8, std::uint32_t seed = 11) {
  std::mt19937 rng(seed);
  ArchiveOptions options;
  options.keyframe_interval = keyframe_interval;
  options.fsync_on_keyframe = false;
  ArchiveWriter writer(path, options);

  Snapshot current;
  current.router_name = "fixw";
  for (std::uint32_t i = 0; i < 30; ++i) current.routes.upsert(route(i, 3));
  for (std::uint32_t i = 0; i < 10; ++i) {
    current.pairs.upsert(pair(0x0A010100u + i, i % 4, 2.0 + i));
  }
  for (std::uint32_t i = 0; i < 5; ++i) {
    current.sa_cache.upsert(sa(0x0A010100u + i, i));
  }

  for (int cycle = 0; cycle < cycles; ++cycle) {
    if (cycle > 0) {
      current.pairs.advance_derived(kCycle);
      current.routes.advance_derived(kCycle);
      current.sa_cache.advance_derived(kCycle);
      current.routes.upsert(route(rng() % 30, 3 + cycle % 11));
      current.pairs.upsert(pair(0x0A010100u + rng() % 10, rng() % 4,
                                static_cast<double>(rng() % 800) / 10.0));
      if (rng() % 4 == 0) {
        current.sa_cache.erase(sa(0x0A010100u + rng() % 5, rng() % 5).key());
      } else {
        current.sa_cache.upsert(sa(0x0A010100u + rng() % 5, rng() % 5));
      }
    }
    current.captured = sim::TimePoint::start() + kCycle * std::int64_t{cycle};
    writer.append(current, meta_for(cycle));
  }
  writer.close();
}

void write_sidecar_for(const std::string& path) {
  const ArchiveReader reader(path);
  ASSERT_TRUE(write_rollup_sidecar(rollup_path_for(path), build_rollups(reader)));
}

// --- Sidecar format ---------------------------------------------------------

TEST(RollupSidecar, RoundTripsThroughDisk) {
  const std::string path = temp_path("rollup_roundtrip.marc");
  write_archive(path, 30);
  const ArchiveReader reader(path);
  const RollupSidecar sidecar = build_rollups(reader);
  ASSERT_FALSE(sidecar.hourly.empty());
  ASSERT_FALSE(sidecar.daily.empty());
  // 30 cycles at 15 min span 7.25 h: 8 hourly buckets, 1 daily.
  EXPECT_EQ(sidecar.hourly.size(), 8u);
  EXPECT_EQ(sidecar.daily.size(), 1u);
  EXPECT_EQ(sidecar.source, fingerprint_of(reader));

  ASSERT_TRUE(write_rollup_sidecar(rollup_path_for(path), sidecar));
  const std::optional<RollupSidecar> loaded =
      load_rollup_sidecar(rollup_path_for(path));
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->source, sidecar.source);
  EXPECT_EQ(loaded->hourly, sidecar.hourly);
  EXPECT_EQ(loaded->daily, sidecar.daily);
}

TEST(RollupSidecar, PathDerivation) {
  EXPECT_EQ(rollup_path_for("/data/fixw.marc"), "/data/fixw.mroll");
  EXPECT_EQ(rollup_path_for("fixw.marc"), "fixw.mroll");
  EXPECT_EQ(rollup_path_for("noext"), "noext.mroll");
  EXPECT_EQ(rollup_path_for("/dotted.dir/noext"), "/dotted.dir/noext.mroll");
}

TEST(RollupSidecar, DamagedFileLoadsAsAbsent) {
  const std::string path = temp_path("rollup_damage.marc");
  write_archive(path, 20);
  write_sidecar_for(path);
  const std::string sidecar_path = rollup_path_for(path);

  // Flip one payload byte: the CRC must reject it.
  {
    std::fstream file(sidecar_path,
                      std::ios::in | std::ios::out | std::ios::binary);
    file.seekp(40);
    char byte = 0;
    file.seekg(40);
    file.get(byte);
    file.seekp(40);
    file.put(static_cast<char>(byte ^ 0x5A));
  }
  EXPECT_FALSE(load_rollup_sidecar(sidecar_path).has_value());
  EXPECT_FALSE(load_rollup_sidecar(temp_path("missing.mroll")).has_value());
}

TEST(RollupSidecar, StaleFingerprintIsRejectedByEngine) {
  const std::string path = temp_path("rollup_stale.marc");
  write_archive(path, 40);
  write_sidecar_for(path);
  // Rewrite the archive shorter; the sidecar on disk now describes 40
  // cycles that no longer exist.
  write_archive(path, 25);
  QueryEngine engine;
  engine.add_archive("fixw", path);
  EXPECT_FALSE(engine.has_rollups("fixw"));
  EXPECT_EQ(engine.rollups_rejected(), 1u);

  // A raw-falling-back coarse query still answers, from the archive.
  Query query;
  query.target = "fixw";
  query.metric = QueryMetric::dvmrp_routes;
  query.resolution = QueryResolution::hour;
  const QueryResult result = engine.run(query);
  EXPECT_FALSE(result.from_rollup);
  EXPECT_FALSE(result.points.empty());
  EXPECT_GT(result.records_decoded, 0u);
}

// --- Rollup / raw equivalence ----------------------------------------------

TEST(QueryEngine, RollupMatchesRawScanOnEveryMetricAndAggregate) {
  const std::string path = temp_path("rollup_equiv.marc");
  write_archive(path, 120);  // 30 hours: 2 daily buckets, 30 hourly
  write_sidecar_for(path);
  QueryEngine engine;
  engine.add_archive("fixw", path);
  ASSERT_TRUE(engine.has_rollups("fixw"));

  for (std::size_t m = 0; m < kQueryMetricCount; ++m) {
    for (const QueryAggregate aggregate :
         {QueryAggregate::last, QueryAggregate::min, QueryAggregate::max,
          QueryAggregate::mean, QueryAggregate::sum, QueryAggregate::count}) {
      for (const QueryResolution resolution :
           {QueryResolution::hour, QueryResolution::day}) {
        Query query;
        query.target = "fixw";
        query.metric = static_cast<QueryMetric>(m);
        query.resolution = resolution;
        query.aggregate = aggregate;
        // A range that starts and ends mid-bucket, to exercise snapping.
        query.from = sim::TimePoint::from_ms(kHourMs + kHourMs / 2);
        query.to = sim::TimePoint::from_ms(20 * kHourMs + kHourMs / 3);

        const QueryResult rollup = engine.run(query);
        query.allow_rollup = false;
        const QueryResult raw = engine.run(query);

        ASSERT_TRUE(rollup.from_rollup)
            << to_string(query.metric) << " agg " << static_cast<int>(aggregate);
        ASSERT_FALSE(raw.from_rollup);
        ASSERT_EQ(rollup.points.size(), raw.points.size())
            << to_string(query.metric);
        for (std::size_t i = 0; i < rollup.points.size(); ++i) {
          EXPECT_EQ(rollup.points[i].t, raw.points[i].t) << to_string(query.metric);
          EXPECT_DOUBLE_EQ(rollup.points[i].value, raw.points[i].value)
              << to_string(query.metric) << " agg " << static_cast<int>(aggregate)
              << " point " << i;
          EXPECT_EQ(rollup.points[i].samples, raw.points[i].samples);
        }
      }
    }
  }
}

TEST(QueryEngine, RollupServedQueryDecodesZeroRecords) {
  const std::string path = temp_path("rollup_decodes.marc");
  write_archive(path, 60);
  write_sidecar_for(path);
  QueryEngine engine;
  engine.add_archive("fixw", path);
  const ArchiveReader* reader = engine.reader("fixw");
  ASSERT_NE(reader, nullptr);

  const std::uint64_t before = reader->records_decoded();
  Query query;
  query.target = "fixw";
  query.metric = QueryMetric::sessions;
  query.resolution = QueryResolution::hour;
  query.aggregate = QueryAggregate::mean;
  const QueryResult result = engine.run(query);
  EXPECT_TRUE(result.from_rollup);
  EXPECT_EQ(result.records_decoded, 0u);
  EXPECT_GT(result.rollup_buckets, 0u);
  EXPECT_EQ(reader->records_decoded(), before);  // the archive was not touched
}

TEST(QueryEngine, FilteredCoarseQueryFallsBackToRawScan) {
  const std::string path = temp_path("rollup_filtered.marc");
  write_archive(path, 48);
  write_sidecar_for(path);
  QueryEngine engine;
  engine.add_archive("fixw", path);

  Query query;
  query.target = "fixw";
  query.metric = QueryMetric::dvmrp_routes;
  query.resolution = QueryResolution::hour;
  query.include_stale = false;  // per-cycle filter: rollups cannot serve this
  const QueryResult result = engine.run(query);
  EXPECT_FALSE(result.from_rollup);
  EXPECT_GT(result.records_decoded, 0u);
}

// --- Raw scans vs the replay pipeline ---------------------------------------

TEST(QueryEngine, RawScanMatchesReplayPerCycle) {
  const std::string path = temp_path("raw_vs_replay.marc");
  write_archive(path, 50);
  QueryEngine engine;
  engine.add_archive("fixw", path);
  const ArchiveReader reader(path);
  const ReplayRun run = replay_archive(reader);
  ASSERT_EQ(run.results.size(), 50u);

  // Mid-archive subrange, chosen off key-frame boundaries.
  const std::size_t a = 13, b = 41;
  Query query;
  query.target = "fixw";
  query.from = run.results[a].t;
  query.to = run.results[b].t;

  const auto expect_matches = [&](QueryMetric metric, auto extract) {
    query.metric = metric;
    const QueryResult result = engine.run(query);
    ASSERT_EQ(result.points.size(), b - a + 1) << to_string(metric);
    for (std::size_t i = 0; i < result.points.size(); ++i) {
      EXPECT_EQ(result.points[i].t, run.results[a + i].t);
      EXPECT_DOUBLE_EQ(result.points[i].value,
                       static_cast<double>(extract(run.results[a + i])))
          << to_string(metric) << " cycle " << a + i;
    }
  };
  expect_matches(QueryMetric::sessions,
                 [](const CycleResult& r) { return r.usage.sessions; });
  expect_matches(QueryMetric::participants,
                 [](const CycleResult& r) { return r.usage.participants; });
  expect_matches(QueryMetric::active_sessions,
                 [](const CycleResult& r) { return r.usage.active_sessions; });
  expect_matches(QueryMetric::senders,
                 [](const CycleResult& r) { return r.usage.senders; });
  expect_matches(QueryMetric::bandwidth_kbps,
                 [](const CycleResult& r) { return r.usage.bandwidth_kbps; });
  expect_matches(QueryMetric::unicast_equivalent_kbps, [](const CycleResult& r) {
    return r.usage.unicast_equivalent_kbps;
  });
  expect_matches(QueryMetric::dvmrp_routes,
                 [](const CycleResult& r) { return r.dvmrp_routes; });
  expect_matches(QueryMetric::dvmrp_valid_routes,
                 [](const CycleResult& r) { return r.dvmrp_valid_routes; });
  // route_changes needs the predecessor cycle: proves the scan starts one
  // cycle early and still matches the sequential replay exactly.
  expect_matches(QueryMetric::route_changes,
                 [](const CycleResult& r) { return r.route_changes; });
  expect_matches(QueryMetric::sa_entries,
                 [](const CycleResult& r) { return r.sa_entries; });
  expect_matches(QueryMetric::parse_warnings,
                 [](const CycleResult& r) { return r.parse_warnings; });
  expect_matches(QueryMetric::collection_latency_ms, [](const CycleResult& r) {
    return static_cast<double>(r.collection_latency.total_ms());
  });
}

TEST(QueryEngine, FiltersDropCyclesBeforeAggregation) {
  const std::string path = temp_path("filters.marc");
  write_archive(path, 40);
  QueryEngine engine;
  engine.add_archive("fixw", path);
  const ReplayRun run = replay_archive(ArchiveReader(path));

  Query query;
  query.target = "fixw";
  query.metric = QueryMetric::dvmrp_routes;
  query.include_stale = false;
  query.include_failed = false;
  query.min_value = 10.0;
  const QueryResult result = engine.run(query);

  std::vector<const CycleResult*> kept;
  for (const CycleResult& r : run.results) {
    if (r.stale || r.collection_failures > 0) continue;
    if (static_cast<double>(r.dvmrp_routes) < 10.0) continue;
    kept.push_back(&r);
  }
  ASSERT_EQ(result.points.size(), kept.size());
  ASSERT_FALSE(kept.empty());
  for (std::size_t i = 0; i < kept.size(); ++i) {
    EXPECT_EQ(result.points[i].t, kept[i]->t);
    EXPECT_DOUBLE_EQ(result.points[i].value,
                     static_cast<double>(kept[i]->dvmrp_routes));
  }
}

TEST(QueryEngine, RangeScanDecodesOnlyTouchedBlocks) {
  const std::string path = temp_path("pruning.marc");
  write_archive(path, 96, /*keyframe_interval=*/8);
  QueryEngine engine;
  engine.add_archive("fixw", path);

  Query query;
  query.target = "fixw";
  query.metric = QueryMetric::sa_entries;
  query.from = sim::TimePoint::start() + kCycle * std::int64_t{50};
  query.to = sim::TimePoint::start() + kCycle * std::int64_t{55};
  const QueryResult result = engine.run(query);
  ASSERT_EQ(result.points.size(), 6u);
  // Worst case: back up to the governing key-frame (< interval) plus the
  // range itself — nowhere near the 96-cycle archive.
  EXPECT_LE(result.records_decoded + result.cache_hits, 8u + 6u);
  EXPECT_GT(result.records_decoded + result.cache_hits, 0u);
}

TEST(QueryEngine, RepeatedQueriesServeKeyframesFromCache) {
  const std::string path = temp_path("cache_reuse.marc");
  write_archive(path, 64, /*keyframe_interval=*/8);
  QueryEngine engine;
  engine.add_archive("fixw", path);

  Query query;
  query.target = "fixw";
  query.metric = QueryMetric::dvmrp_routes;
  query.from = sim::TimePoint::start() + kCycle * std::int64_t{16};
  query.to = sim::TimePoint::start() + kCycle * std::int64_t{20};
  const QueryResult cold = engine.run(query);
  EXPECT_EQ(cold.cache_hits, 0u);
  EXPECT_GT(cold.cache_misses, 0u);

  const QueryResult warm = engine.run(query);
  EXPECT_EQ(warm.cache_hits, 1u);  // the governing key-frame block
  EXPECT_EQ(warm.cache_misses, 0u);
  EXPECT_EQ(warm.records_decoded, cold.records_decoded - 1);
  ASSERT_EQ(warm.points.size(), cold.points.size());
  for (std::size_t i = 0; i < warm.points.size(); ++i) {
    EXPECT_DOUBLE_EQ(warm.points[i].value, cold.points[i].value);
  }
}

TEST(QueryEngine, ReplayThroughEngineMatchesReplayArchive) {
  const std::string path = temp_path("replay_parity.marc");
  write_archive(path, 40);
  QueryEngine engine;
  engine.add_archive("fixw", path);

  const ReplayRun direct = replay_archive(ArchiveReader(path));
  const ReplayRun via_engine = engine.replay("fixw");
  ASSERT_EQ(via_engine.results.size(), direct.results.size());
  for (std::size_t i = 0; i < direct.results.size(); ++i) {
    EXPECT_EQ(via_engine.results[i], direct.results[i]) << "cycle " << i;
  }
  EXPECT_EQ(via_engine.spike_regime_resets, direct.spike_regime_resets);
  EXPECT_EQ(via_engine.route_monitor.total_changes(),
            direct.route_monitor.total_changes());

  // A second replay reuses every key-frame block.
  const BlockCache::Stats before = engine.cache().stats();
  (void)engine.replay("fixw");
  const BlockCache::Stats after = engine.cache().stats();
  EXPECT_EQ(after.hits - before.hits, 5u);  // 40 cycles / interval 8
}

TEST(QueryEngine, UnknownTargetThrows) {
  const std::string path = temp_path("unknown_target.marc");
  write_archive(path, 10);
  QueryEngine engine;
  engine.add_archive("fixw", path);
  Query query;
  query.target = "nosuch";
  EXPECT_THROW((void)engine.run(query), std::invalid_argument);
  EXPECT_THROW((void)engine.replay("nosuch"), std::invalid_argument);
  EXPECT_THROW(engine.add_archive("fixw", path), std::invalid_argument);
  EXPECT_EQ(engine.reader("nosuch"), nullptr);
  EXPECT_EQ(engine.targets(), std::vector<std::string>{"fixw"});
}

// --- Compaction-time rollups ------------------------------------------------

TEST(Compaction, WritesSidecarTheEngineAccepts) {
  const std::string input = temp_path("compact_in.marc");
  const std::string output = temp_path("compact_out.marc");
  write_archive(input, 60);
  const CompactionStats stats = compact_archive(input, output);
  EXPECT_TRUE(stats.rollups_written);
  EXPECT_GT(stats.rollup_hour_buckets, 0u);
  EXPECT_GT(stats.rollup_day_buckets, 0u);

  QueryEngine engine;
  engine.add_archive("fixw", output);
  EXPECT_TRUE(engine.has_rollups("fixw"));
  EXPECT_EQ(engine.rollups_rejected(), 0u);
}

TEST(Compaction, DropBeforeRebuildsRollupsFromSurvivingCyclesOnly) {
  const std::string input = temp_path("compact_drop_in.marc");
  const std::string output = temp_path("compact_drop_out.marc");
  write_archive(input, 96);  // 24 hours
  CompactionOptions options;
  options.drop_before =
      sim::TimePoint::start() + kCycle * std::int64_t{30};  // mid-bucket horizon
  const CompactionStats stats = compact_archive(input, output, options);
  ASSERT_TRUE(stats.rollups_written);
  EXPECT_EQ(stats.cycles_out, 66u);

  QueryEngine engine;
  engine.add_archive("fixw", output);
  ASSERT_TRUE(engine.has_rollups("fixw"));

  // The straddling bucket was re-aggregated from the kept tail: the rollup
  // answer still equals the raw scan over the compacted archive.
  Query query;
  query.target = "fixw";
  query.metric = QueryMetric::bandwidth_kbps;
  query.resolution = QueryResolution::hour;
  query.aggregate = QueryAggregate::mean;
  const QueryResult rollup = engine.run(query);
  query.allow_rollup = false;
  const QueryResult raw = engine.run(query);
  ASSERT_TRUE(rollup.from_rollup);
  ASSERT_EQ(rollup.points.size(), raw.points.size());
  for (std::size_t i = 0; i < rollup.points.size(); ++i) {
    EXPECT_EQ(rollup.points[i].t, raw.points[i].t);
    EXPECT_DOUBLE_EQ(rollup.points[i].value, raw.points[i].value);
    EXPECT_EQ(rollup.points[i].samples, raw.points[i].samples);
  }
  // No bucket claims cycles from before the horizon.
  ASSERT_FALSE(rollup.points.empty());
  EXPECT_LT(rollup.points.front().samples, 4u);  // partial straddling bucket
}

// --- BlockCache -------------------------------------------------------------

Snapshot small_block(std::uint32_t tag) {
  Snapshot block;
  block.router_name = "cache";
  block.captured = sim::TimePoint::from_ms(tag);
  block.pairs.upsert(pair(0x0A010100u + tag, tag % 4, 1.0));
  return block;
}

TEST(BlockCache, EvictsInRecencyOrder) {
  const std::size_t block_bytes = approx_block_bytes(small_block(0));
  // Room for exactly three blocks, one shard so eviction is deterministic.
  BlockCache cache(3 * block_bytes, /*shard_count=*/1);
  cache.insert(1, small_block(1));
  cache.insert(2, small_block(2));
  cache.insert(3, small_block(3));
  ASSERT_EQ(cache.stats().entries, 3u);

  EXPECT_NE(cache.get(1), nullptr);  // 1 becomes most recently used
  cache.insert(4, small_block(4));   // over budget: evict LRU = 2

  EXPECT_EQ(cache.get(2), nullptr);
  EXPECT_NE(cache.get(1), nullptr);
  EXPECT_NE(cache.get(3), nullptr);
  EXPECT_NE(cache.get(4), nullptr);

  const BlockCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.entries, 3u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.insertions, 4u);
  EXPECT_EQ(stats.hits, 4u);    // get(1) + the three post-eviction probes
  EXPECT_EQ(stats.misses, 1u);  // get(2)
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 4.0 / 5.0);
  EXPECT_EQ(stats.bytes, 3 * block_bytes);
}

TEST(BlockCache, NewestEntrySurvivesItsOwnInsertion) {
  const std::size_t block_bytes = approx_block_bytes(small_block(0));
  BlockCache cache(block_bytes / 2, /*shard_count=*/1);  // nothing fits
  const auto handle = cache.insert(1, small_block(1));
  ASSERT_NE(handle, nullptr);
  EXPECT_NE(cache.get(1), nullptr);  // resident despite exceeding capacity
  cache.insert(2, small_block(2));   // next insertion pushes 1 out
  EXPECT_EQ(cache.get(1), nullptr);
  EXPECT_NE(cache.get(2), nullptr);
  EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(BlockCache, ReplacingAKeyIsNotAnEviction) {
  BlockCache cache(1u << 20, 1);
  cache.insert(7, small_block(1));
  cache.insert(7, small_block(2));
  const BlockCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.insertions, 2u);
  EXPECT_EQ(stats.evictions, 0u);
  const auto block = cache.get(7);
  ASSERT_NE(block, nullptr);
  EXPECT_EQ(block->captured, sim::TimePoint::from_ms(2));  // newest wins
}

TEST(BlockCache, EvictedBlockStaysAliveForExistingReaders) {
  const std::size_t block_bytes = approx_block_bytes(small_block(0));
  BlockCache cache(block_bytes, 1);
  const auto held = cache.insert(1, small_block(1));
  cache.insert(2, small_block(2));  // evicts key 1
  EXPECT_EQ(cache.get(1), nullptr);
  ASSERT_NE(held, nullptr);  // the shared_ptr keeps the block valid
  EXPECT_EQ(held->captured, sim::TimePoint::from_ms(1));
}

TEST(BlockCache, CountersExportThroughTelemetry) {
  TelemetryConfig config;
  config.enabled = true;
  Telemetry telemetry(config);
  BlockCache cache(1u << 20, 2);
  cache.set_telemetry(&telemetry, "fixw");
  cache.insert(1, small_block(1));
  (void)cache.get(1);
  (void)cache.get(2);
  const MetricLabels labels{{"cache", "fixw"}};
  EXPECT_EQ(telemetry.metrics().counter_value("mantra_query_cache_hits_total",
                                              labels),
            1u);
  EXPECT_EQ(telemetry.metrics().counter_value("mantra_query_cache_misses_total",
                                              labels),
            1u);
}

TEST(BlockCache, MultithreadedHammerStaysCoherent) {
  const std::size_t block_bytes = approx_block_bytes(small_block(0));
  BlockCache cache(6 * block_bytes, 4);  // small: constant eviction churn
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 4000;

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      std::mt19937 rng(static_cast<std::uint32_t>(t) + 1);
      for (int op = 0; op < kOpsPerThread; ++op) {
        const std::uint64_t key = rng() % 24;
        if (std::shared_ptr<const Snapshot> block = cache.get(key)) {
          // Read through the handle: tsan would flag an evicted-under-us
          // block if lifetimes were wrong.
          ASSERT_EQ(block->captured.total_ms(),
                    static_cast<std::int64_t>(key));
        } else {
          cache.insert(key, small_block(static_cast<std::uint32_t>(key)));
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  const BlockCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<std::uint64_t>(kThreads) * kOpsPerThread);
  EXPECT_EQ(stats.misses, stats.insertions);
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_GE(stats.entries, 1u);
  EXPECT_LE(stats.bytes, 6 * block_bytes + 4 * block_bytes);  // per-shard slack
}

TEST(QueryEngine, ConcurrentMixedQueriesAgreeWithSequentialAnswers) {
  const std::string path = temp_path("concurrent.marc");
  write_archive(path, 72);
  write_sidecar_for(path);
  QueryEngine engine;
  engine.add_archive("fixw", path);

  // Sequential ground truth for a small query family.
  std::vector<Query> queries;
  for (int i = 0; i < 6; ++i) {
    Query query;
    query.target = "fixw";
    query.metric = i % 2 == 0 ? QueryMetric::sessions : QueryMetric::dvmrp_routes;
    query.resolution = i % 3 == 0 ? QueryResolution::hour : QueryResolution::raw;
    query.aggregate = QueryAggregate::mean;
    query.from = sim::TimePoint::start() + kCycle * std::int64_t{4 * i};
    query.to = sim::TimePoint::start() + kCycle * std::int64_t{4 * i + 30};
    queries.push_back(query);
  }
  std::vector<QueryResult> expected;
  expected.reserve(queries.size());
  for (const Query& query : queries) expected.push_back(engine.run(query));

  std::vector<std::thread> threads;
  std::atomic<int> mismatches{0};
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < 20; ++round) {
        const std::size_t i =
            static_cast<std::size_t>(t + round) % queries.size();
        const QueryResult result = engine.run(queries[i]);
        if (result.points.size() != expected[i].points.size()) {
          ++mismatches;
          continue;
        }
        for (std::size_t p = 0; p < result.points.size(); ++p) {
          if (result.points[p].value != expected[i].points[p].value ||
              result.points[p].t != expected[i].points[p].t) {
            ++mismatches;
            break;
          }
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_GT(engine.cache().stats().hits, 0u);
}

}  // namespace
}  // namespace mantra::core
