// Property-style parameterized sweeps (TEST_P) over the system's core
// invariants: codec round-trips, protocol convergence under loss, logger
// reconstruction across configurations, engine determinism, delivery
// completeness across planes and group sizes, and parser robustness against
// corrupted captures.
#include <gtest/gtest.h>

#include <random>

#include "core/log.hpp"
#include "core/mantra.hpp"
#include "core/parse.hpp"
#include "router/cli.hpp"
#include "core/tables.hpp"
#include "router/network.hpp"
#include "workload/scenario.hpp"

namespace mantra {
namespace {

// ---------------------------------------------------------------------------
// Prefix codec round-trip across every prefix length.
// ---------------------------------------------------------------------------

class PrefixRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(PrefixRoundTrip, ParseRenderIsIdentity) {
  const int length = GetParam();
  std::mt19937 rng(static_cast<unsigned>(length) * 7919u + 3);
  for (int i = 0; i < 50; ++i) {
    const net::Prefix prefix(net::Ipv4Address(static_cast<std::uint32_t>(rng())),
                             length);
    const auto parsed = net::Prefix::parse(prefix.to_string());
    ASSERT_TRUE(parsed.has_value()) << prefix.to_string();
    EXPECT_EQ(*parsed, prefix);
    // Canonical: no host bits below the mask.
    EXPECT_EQ(prefix.address().value() & ~prefix.netmask(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(AllLengths, PrefixRoundTrip, ::testing::Range(0, 33));

// ---------------------------------------------------------------------------
// Uptime codec round-trip across magnitudes (CLI render -> parser).
// ---------------------------------------------------------------------------

class UptimeRoundTrip : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(UptimeRoundTrip, CliRenderingParsesBack) {
  const sim::Duration d = sim::Duration::seconds(GetParam());
  const std::string text = router::cli::uptime_string(d);
  const auto parsed = core::parse_uptime(text);
  ASSERT_TRUE(parsed.has_value()) << text;
  // "XdYYh" loses sub-hour precision by design; check within an hour.
  EXPECT_LE(std::abs((*parsed - d).total_ms()), 3'600'000) << text;
}

INSTANTIATE_TEST_SUITE_P(Magnitudes, UptimeRoundTrip,
                         ::testing::Values(0, 1, 59, 60, 3599, 3600, 86399, 86400,
                                           90000, 900000, 40000000));

// ---------------------------------------------------------------------------
// DVMRP convergence: after loss stops, all routers agree on reachability.
// ---------------------------------------------------------------------------

struct ConvergenceCase {
  int domains;
  double initial_loss;
};

class DvmrpConvergence : public ::testing::TestWithParam<ConvergenceCase> {};

TEST_P(DvmrpConvergence, AllRoutersAgreeOnceLossStops) {
  const ConvergenceCase param = GetParam();
  workload::ScenarioConfig config;
  config.seed = 31 + param.domains;
  config.domains = param.domains;
  config.hosts_per_domain = 2;
  config.dvmrp_prefixes_per_domain = 8;
  config.report_loss = param.initial_loss;
  config.timer_scale = 1;
  config.full_timers = true;
  config.generator.session_arrivals_per_hour = 0.0;
  config.generator.bursts_per_day = 0.0;
  workload::FixwScenario scenario(config);
  scenario.start();

  // Churn phase under loss.
  scenario.engine().run_until(sim::TimePoint::start() + sim::Duration::minutes(30));

  // Loss stops; within a few report rounds every router must know every
  // originated prefix again (distance-vector convergence).
  for (const net::Node& node : scenario.topology().nodes()) {
    for (const net::Interface& iface : node.interfaces) {
      if (iface.link != net::kInvalidLink) {
        scenario.network().set_link_loss(iface.link, 0.0);
      }
    }
  }
  scenario.engine().run_until(scenario.engine().now() + sim::Duration::minutes(15));

  // Convergence invariant: every stub network is RPF-reachable from every
  // border (either via the exact /24 or a covering aggregate -- even-indexed
  // domains advertise their stubs aggregated).
  for (int d = 0; d < param.domains; ++d) {
    const auto* border = scenario.network().router(scenario.border_nodes()[d]);
    for (int origin = 0; origin < param.domains; ++origin) {
      for (const net::Prefix& stub : scenario.domain_stub_prefixes(origin)) {
        const dvmrp::Route* route =
            border->dvmrp()->routes().rpf_lookup(stub.host(1));
        ASSERT_NE(route, nullptr)
            << "domain " << d << " cannot reach " << stub.to_string();
        EXPECT_EQ(route->state, dvmrp::RouteState::kValid);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    TopologiesAndLoss, DvmrpConvergence,
    ::testing::Values(ConvergenceCase{3, 0.0}, ConvergenceCase{3, 0.4},
                      ConvergenceCase{6, 0.2}, ConvergenceCase{10, 0.3}));

// ---------------------------------------------------------------------------
// Logger reconstruction across configurations.
// ---------------------------------------------------------------------------

struct LoggerCase {
  bool store_deltas;
  int keyframe_every;
};

class LoggerReconstruction : public ::testing::TestWithParam<LoggerCase> {};

TEST_P(LoggerReconstruction, StableFieldsExactEverywhere) {
  const LoggerCase param = GetParam();
  core::LoggerConfig config;
  config.store_deltas = param.store_deltas;
  config.full_snapshot_every = param.keyframe_every;
  core::DataLogger logger(config);

  std::mt19937 rng(17);
  core::PairTable current;
  std::vector<core::PairTable> truth;
  for (int cycle = 0; cycle < 30; ++cycle) {
    for (int mutation = 0; mutation < 6; ++mutation) {
      core::PairRow row;
      row.source = net::Ipv4Address(0x0A000000u + rng() % 40);
      row.group = net::Ipv4Address(0xE0020000u + rng() % 5);
      if (rng() % 4 == 0) {
        current.erase(row.key());
      } else {
        row.current_kbps = static_cast<double>(rng() % 1000) / 7.0;
        current.upsert(row);
      }
    }
    core::Snapshot snapshot;
    snapshot.router_name = "r";
    snapshot.captured =
        sim::TimePoint::start() + sim::Duration::minutes(15 * cycle);
    snapshot.pairs = current;
    logger.record(snapshot);
    truth.push_back(current);
  }

  for (std::size_t i = 0; i < truth.size(); ++i) {
    const core::Snapshot rebuilt = logger.reconstruct(i);
    ASSERT_EQ(rebuilt.pairs.size(), truth[i].size()) << "cycle " << i;
    truth[i].visit([&](const core::PairRow& row) {
      const core::PairRow* got = rebuilt.pairs.find(row.key());
      ASSERT_NE(got, nullptr);
      EXPECT_DOUBLE_EQ(got->current_kbps, row.current_kbps);
    });
  }
}

INSTANTIATE_TEST_SUITE_P(Configs, LoggerReconstruction,
                         ::testing::Values(LoggerCase{true, 96}, LoggerCase{true, 4},
                                           LoggerCase{true, 1},
                                           LoggerCase{false, 96}));

// ---------------------------------------------------------------------------
// Scenario determinism: identical seeds give identical monitored series.
// ---------------------------------------------------------------------------

class ScenarioDeterminism : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ScenarioDeterminism, SameSeedSameSeries) {
  const auto run = [&](std::uint64_t seed) {
    workload::ScenarioConfig config;
    config.seed = seed;
    config.domains = 4;
    config.hosts_per_domain = 6;
    config.dvmrp_prefixes_per_domain = 4;
    config.report_loss = 0.1;
    config.timer_scale = 4;
    config.full_timers = false;
    config.generator.session_arrivals_per_hour = 30.0;
    config.generator.bursts_per_day = 2.0;
    workload::FixwScenario scenario(config);
    core::Mantra mantra(scenario.engine(), core::MantraConfig{});
    mantra.add_target(scenario.network().router(scenario.fixw_node()));
    scenario.start();
    mantra.start();
    scenario.engine().run_until(sim::TimePoint::start() + sim::Duration::hours(12));
    std::vector<std::pair<int, std::size_t>> series;
    for (const core::CycleResult& r : mantra.target_view("fixw").results()) {
      series.emplace_back(r.usage.sessions, r.dvmrp_valid_routes);
    }
    return series;
  };
  const auto a = run(GetParam());
  const auto b = run(GetParam());
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a.empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScenarioDeterminism,
                         ::testing::Values(1u, 42u, 1998u));

// ---------------------------------------------------------------------------
// Delivery completeness: a flow reaches every member, on both planes, for
// growing audience sizes.
// ---------------------------------------------------------------------------

struct DeliveryCase {
  router::MfcMode plane;
  int members;
};

class DeliveryCompleteness : public ::testing::TestWithParam<DeliveryCase> {};

TEST_P(DeliveryCompleteness, EveryMemberReached) {
  const DeliveryCase param = GetParam();
  workload::ScenarioConfig config;
  config.seed = 77;
  config.domains = 5;
  config.hosts_per_domain = 12;
  config.dvmrp_prefixes_per_domain = 2;
  config.report_loss = 0.0;
  config.timer_scale = 1;
  config.full_timers = true;
  config.generator.session_arrivals_per_hour = 0.0;
  config.generator.bursts_per_day = 0.0;
  workload::FixwScenario scenario(config);
  scenario.start();
  scenario.engine().run_until(sim::TimePoint::start() + sim::Duration::minutes(5));

  const net::Ipv4Address group(224, 2, 9, 9);
  scenario.network().set_group_plane(group, param.plane);

  // Spread members across domains round-robin; the first is the sender.
  std::vector<net::NodeId> members;
  for (int i = 0; i < param.members; ++i) {
    const int domain = i % config.domains;
    const std::string name =
        (domain == 0 ? std::string("ucsb-gw") : "bdr" + std::to_string(domain)) +
        "-h" + std::to_string(i / config.domains);
    for (const net::Node& node : scenario.topology().nodes()) {
      if (node.name == name) members.push_back(node.id);
    }
  }
  ASSERT_EQ(members.size(), static_cast<std::size_t>(param.members));
  for (net::NodeId member : members) scenario.network().host_join(member, group);
  scenario.engine().run_until(scenario.engine().now() + sim::Duration::seconds(30));
  scenario.network().flow_start(members[0], group, 128.0, param.plane);
  scenario.engine().run_until(scenario.engine().now() + sim::Duration::minutes(3));

  const router::Flow* flow = scenario.network().flow(
      scenario.network().host_address(members[0]), group);
  ASSERT_NE(flow, nullptr);
  // Every member except the sender itself receives the stream. (The sender
  // is also a member; loopback delivery is host-local and not modelled.)
  for (std::size_t i = 1; i < members.size(); ++i) {
    EXPECT_EQ(flow->reached_hosts.count(members[i]), 1u) << "member " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    PlanesAndSizes, DeliveryCompleteness,
    ::testing::Values(DeliveryCase{router::MfcMode::kDense, 3},
                      DeliveryCase{router::MfcMode::kDense, 10},
                      DeliveryCase{router::MfcMode::kDense, 25},
                      DeliveryCase{router::MfcMode::kSparse, 3},
                      DeliveryCase{router::MfcMode::kSparse, 10},
                      DeliveryCase{router::MfcMode::kSparse, 25}));

// ---------------------------------------------------------------------------
// Threshold monotonicity: raising the sender threshold never increases the
// sender/active counts.
// ---------------------------------------------------------------------------

class ThresholdMonotonicity : public ::testing::TestWithParam<double> {};

TEST_P(ThresholdMonotonicity, HigherThresholdFewerSenders) {
  std::mt19937 rng(5);
  core::PairTable pairs;
  for (int i = 0; i < 300; ++i) {
    core::PairRow row;
    row.source = net::Ipv4Address(0x0A000000u + i);
    row.group = net::Ipv4Address(0xE0020000u + i % 40);
    row.current_kbps = static_cast<double>(rng() % 2000) / 13.0;
    pairs.upsert(row);
  }
  const double threshold = GetParam();
  const auto lower = core::derive_participants(pairs, threshold);
  const auto higher = core::derive_participants(pairs, threshold * 2.0);
  int low_senders = 0, high_senders = 0;
  lower.visit([&](const core::ParticipantRow& r) { low_senders += r.sender; });
  higher.visit([&](const core::ParticipantRow& r) { high_senders += r.sender; });
  EXPECT_GE(low_senders, high_senders);

  const auto s_low = core::derive_sessions(pairs, threshold);
  const auto s_high = core::derive_sessions(pairs, threshold * 2.0);
  int a_low = 0, a_high = 0;
  s_low.visit([&](const core::SessionRow& r) { a_low += r.active; });
  s_high.visit([&](const core::SessionRow& r) { a_high += r.active; });
  EXPECT_GE(a_low, a_high);
}

INSTANTIATE_TEST_SUITE_P(Thresholds, ThresholdMonotonicity,
                         ::testing::Values(1.0, 2.0, 4.0, 8.0, 16.0, 64.0));

// ---------------------------------------------------------------------------
// Parser robustness: corrupted captures never crash and produce warnings,
// never phantom rows.
// ---------------------------------------------------------------------------

class ParserRobustness : public ::testing::TestWithParam<int> {};

TEST_P(ParserRobustness, CorruptedCapturesDegradeGracefully) {
  const char* clean =
      "Group: 224.2.0.5\n"
      "  Source: 10.1.1.2/32, Forwarding: 1200/12/512/48.25, Other: 1200/0/0\n"
      "    Average: 44.10 kbps, Uptime: 00:15:00\n";
  std::string text = clean;
  switch (GetParam()) {
    case 0: text = text.substr(0, text.size() / 2); break;      // truncated
    case 1: text = "garbage\n" + text + "\x01\x02trailing"; break;
    case 2: text.insert(text.find("Source"), "Source: bogus, Forwarding: x\n  "); break;
    case 3: {  // CRLF + extra blank noise
      std::string crlf;
      for (char c : text) {
        if (c == '\n') crlf += "\r\n\r\n";
        else crlf += c;
      }
      text = crlf;
      break;
    }
    case 4: text = ""; break;
    case 5: text = std::string(10'000, 'A'); break;
    default: break;
  }
  core::PairTable pairs;
  core::parse_mroute_count(text, pairs);
  // Any parsed row must be internally valid.
  pairs.visit([](const core::PairRow& row) {
    EXPECT_TRUE(row.group.is_multicast());
    EXPECT_FALSE(row.source.is_unspecified());
    EXPECT_GE(row.current_kbps, 0.0);
  });
  core::RouteTable routes;
  core::parse_dvmrp_route(text, routes);
  routes.visit([](const core::RouteRow& row) {
    EXPECT_GE(row.metric, 0);
  });
}

INSTANTIATE_TEST_SUITE_P(CorruptionModes, ParserRobustness, ::testing::Range(0, 6));

}  // namespace
}  // namespace mantra
