#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "pim/pim.hpp"

namespace mantra::pim {
namespace {

const net::Ipv4Address kSelf{10, 0, 0, 1};
const net::Ipv4Address kRp{10, 0, 0, 99};
const net::Ipv4Address kUpstream{10, 0, 0, 2};
const net::Ipv4Address kGroup{224, 2, 0, 5};
const net::Ipv4Address kSource{10, 7, 1, 5};
const net::Ipv4Address kLocalSource{10, 0, 1, 9};

struct SentJoinPrune {
  net::IfIndex ifindex;
  JoinPrune message;
};

class PimTest : public ::testing::Test {
 protected:
  std::unique_ptr<Pim> make(bool self_is_rp, bool timers = false) {
    Config config;
    config.rp_map = {{net::kMulticastRange, self_is_rp ? kSelf : kRp}};
    config.interfaces = {0, 1, 2};
    config.timers_enabled = timers;
    auto pim = std::make_unique<Pim>(engine_, kSelf, std::move(config));
    pim->set_send_join_prune([this](net::IfIndex ifindex, const JoinPrune& m) {
      joins_.push_back({ifindex, m});
    });
    pim->set_send_register(
        [this](net::Ipv4Address rp, const Register& m) { registers_.emplace_back(rp, m); });
    pim->set_send_register_stop([this](net::Ipv4Address dr, const RegisterStop& m) {
      register_stops_.emplace_back(dr, m);
    });
    pim->set_rpf_lookup([this](net::Ipv4Address target) -> std::optional<RpfResult> {
      const auto it = rpf_.find(target);
      if (it == rpf_.end()) return std::nullopt;
      return it->second;
    });
    pim->set_source_discovered([this](net::Ipv4Address s, net::Ipv4Address g) {
      discovered_.emplace_back(s, g);
    });
    return pim;
  }

  sim::Engine engine_;
  std::map<net::Ipv4Address, RpfResult> rpf_{
      {kRp, RpfResult{0, kUpstream}},
      {kSource, RpfResult{0, kUpstream}},
      {kLocalSource, RpfResult{2, net::Ipv4Address{}}},  // directly connected
  };
  std::vector<SentJoinPrune> joins_;
  std::vector<std::pair<net::Ipv4Address, Register>> registers_;
  std::vector<std::pair<net::Ipv4Address, RegisterStop>> register_stops_;
  std::vector<std::pair<net::Ipv4Address, net::Ipv4Address>> discovered_;
};

TEST_F(PimTest, RpMappingUsesFirstMatchingRange) {
  auto pim = make(false);
  EXPECT_EQ(pim->rp_for(kGroup), kRp);
  EXPECT_FALSE(pim->is_rp_for(kGroup));
  auto rp = make(true);
  EXPECT_TRUE(rp->is_rp_for(kGroup));
}

TEST_F(PimTest, UnmappedGroupHasNoRp) {
  Config config;
  config.rp_map = {{net::Prefix(net::Ipv4Address(224, 2, 0, 0), 16), kRp}};
  Pim pim(engine_, kSelf, config);
  EXPECT_TRUE(pim.rp_for(net::Ipv4Address(239, 1, 1, 1)).is_unspecified());
}

TEST_F(PimTest, LocalMembershipSendsStarGJoinTowardsRp) {
  auto pim = make(false);
  pim->local_membership_changed(1, kGroup, true);
  ASSERT_EQ(joins_.size(), 1u);
  EXPECT_EQ(joins_[0].ifindex, 0u);  // RPF interface towards RP
  EXPECT_EQ(joins_[0].message.upstream_neighbor, kUpstream);
  ASSERT_EQ(joins_[0].message.entries.size(), 1u);
  EXPECT_TRUE(joins_[0].message.entries[0].wildcard);
  EXPECT_TRUE(joins_[0].message.entries[0].join);

  const RouteEntry* entry = pim->find_star_g(kGroup);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->oifs.count(1), 1u);
  EXPECT_EQ(entry->rp, kRp);
}

TEST_F(PimTest, MembershipGoneSendsPruneAndGarbageCollects) {
  auto pim = make(false);
  pim->local_membership_changed(1, kGroup, true);
  pim->local_membership_changed(1, kGroup, false);
  ASSERT_EQ(joins_.size(), 2u);
  EXPECT_FALSE(joins_[1].message.entries[0].join);  // prune
  EXPECT_EQ(pim->find_star_g(kGroup), nullptr);     // entry gone
}

TEST_F(PimTest, RpDoesNotJoinUpstreamForStarG) {
  auto rp = make(true);
  rp->local_membership_changed(1, kGroup, true);
  EXPECT_TRUE(joins_.empty());
  EXPECT_NE(rp->find_star_g(kGroup), nullptr);
}

TEST_F(PimTest, DownstreamJoinAddsOif) {
  auto pim = make(false);
  JoinPrune message;
  message.sender = net::Ipv4Address(10, 0, 2, 7);
  message.upstream_neighbor = kSelf;
  message.entries = {{kGroup, net::Ipv4Address{}, true, true}};
  pim->on_join_prune(2, message);
  const RouteEntry* entry = pim->find_star_g(kGroup);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->oifs.count(2), 1u);
  // And the join propagates upstream.
  ASSERT_EQ(joins_.size(), 1u);
}

TEST_F(PimTest, JoinAddressedToAnotherRouterIgnored) {
  auto pim = make(false);
  JoinPrune message;
  message.sender = net::Ipv4Address(10, 0, 2, 7);
  message.upstream_neighbor = net::Ipv4Address(10, 0, 0, 200);  // not us
  message.entries = {{kGroup, net::Ipv4Address{}, true, true}};
  pim->on_join_prune(2, message);
  EXPECT_EQ(pim->find_star_g(kGroup), nullptr);
  EXPECT_TRUE(joins_.empty());
}

TEST_F(PimTest, DownstreamPruneRemovesOifAndPropagates) {
  auto pim = make(false);
  JoinPrune join;
  join.sender = net::Ipv4Address(10, 0, 2, 7);
  join.upstream_neighbor = kSelf;
  join.entries = {{kGroup, net::Ipv4Address{}, true, true}};
  pim->on_join_prune(2, join);

  JoinPrune prune = join;
  prune.entries[0].join = false;
  pim->on_join_prune(2, prune);
  EXPECT_EQ(pim->find_star_g(kGroup), nullptr);
  ASSERT_EQ(joins_.size(), 2u);
  EXPECT_FALSE(joins_[1].message.entries[0].join);
}

TEST_F(PimTest, LocalSourceTriggersRegisterToRp) {
  auto pim = make(false);
  pim->local_source_active(kLocalSource, kGroup);
  ASSERT_EQ(registers_.size(), 1u);
  EXPECT_EQ(registers_[0].first, kRp);
  EXPECT_EQ(registers_[0].second.source, kLocalSource);
  const RouteEntry* entry = pim->find_sg(kLocalSource, kGroup);
  ASSERT_NE(entry, nullptr);
  EXPECT_TRUE(entry->register_state);
  // Directly connected source: no upstream (S,G) join.
  EXPECT_TRUE(joins_.empty());
}

TEST_F(PimTest, RegisterAtRpWithoutReceiversOnlySendsStop) {
  auto rp = make(true);
  Register message{net::Ipv4Address(10, 3, 1, 1), kSource, kGroup};
  rp->on_register(message);
  ASSERT_EQ(discovered_.size(), 1u);
  ASSERT_EQ(register_stops_.size(), 1u);
  EXPECT_EQ(register_stops_[0].first, message.sender);
  EXPECT_TRUE(joins_.empty());  // nobody wants the traffic
}

TEST_F(PimTest, RegisterAtRpWithReceiversJoinsSpt) {
  auto rp = make(true);
  rp->local_membership_changed(1, kGroup, true);  // receivers exist
  Register message{net::Ipv4Address(10, 3, 1, 1), kSource, kGroup};
  rp->on_register(message);
  const RouteEntry* entry = rp->find_sg(kSource, kGroup);
  ASSERT_NE(entry, nullptr);
  ASSERT_FALSE(joins_.empty());
  EXPECT_FALSE(joins_.back().message.entries[0].wildcard);  // (S,G) join
  EXPECT_TRUE(joins_.back().message.entries[0].join);
}

TEST_F(PimTest, LateReceiversPullKnownSources) {
  auto rp = make(true);
  Register message{net::Ipv4Address(10, 3, 1, 1), kSource, kGroup};
  rp->on_register(message);
  EXPECT_TRUE(joins_.empty());
  // Receivers appear later: the RP joins every known source.
  rp->local_membership_changed(1, kGroup, true);
  ASSERT_FALSE(joins_.empty());
  EXPECT_FALSE(joins_.back().message.entries[0].wildcard);
}

TEST_F(PimTest, DataArrivalTriggersSptSwitchover) {
  auto pim = make(false);
  pim->local_membership_changed(1, kGroup, true);
  joins_.clear();
  pim->on_data_arrival(kSource, kGroup);
  const RouteEntry* entry = pim->find_sg(kSource, kGroup);
  ASSERT_NE(entry, nullptr);
  EXPECT_TRUE(entry->spt);
  ASSERT_EQ(joins_.size(), 1u);
  EXPECT_FALSE(joins_[0].message.entries[0].wildcard);
}

TEST_F(PimTest, NoSwitchoverWithoutLocalMembers) {
  auto pim = make(false);
  pim->on_data_arrival(kSource, kGroup);
  EXPECT_EQ(pim->find_sg(kSource, kGroup), nullptr);
}

TEST_F(PimTest, SwitchoverDisabledByConfig) {
  Config config;
  config.rp_map = {{net::kMulticastRange, kRp}};
  config.interfaces = {0, 1};
  config.spt_switchover = false;
  config.timers_enabled = false;
  Pim pim(engine_, kSelf, config);
  pim.set_rpf_lookup([this](net::Ipv4Address target) -> std::optional<RpfResult> {
    const auto it = rpf_.find(target);
    return it == rpf_.end() ? std::nullopt : std::optional(it->second);
  });
  pim.local_membership_changed(1, kGroup, true);
  pim.on_data_arrival(kSource, kGroup);
  EXPECT_EQ(pim.find_sg(kSource, kGroup), nullptr);
}

TEST_F(PimTest, RemoteSourceGoneTearsDownInterest) {
  auto pim = make(false);
  pim->join_remote_source(kSource, kGroup);
  ASSERT_NE(pim->find_sg(kSource, kGroup), nullptr);
  const auto joins_before = joins_.size();
  pim->remote_source_gone(kSource, kGroup);
  EXPECT_EQ(pim->find_sg(kSource, kGroup), nullptr);
  EXPECT_GT(joins_.size(), joins_before);  // the (S,G) prune went out
  EXPECT_FALSE(joins_.back().message.entries[0].join);
}

TEST_F(PimTest, RegisterStopClearsRegisterState) {
  auto pim = make(false);
  pim->local_source_active(kLocalSource, kGroup);
  pim->on_register_stop(RegisterStop{kRp, kLocalSource, kGroup});
  const RouteEntry* entry = pim->find_sg(kLocalSource, kGroup);
  ASSERT_NE(entry, nullptr);
  EXPECT_FALSE(entry->register_state);
}

TEST_F(PimTest, SgInheritsSharedTreeOifsForUpstreamInterest) {
  auto pim = make(false);
  // Downstream (*,G) join on interface 2, then an (S,G)-specific join is
  // not needed for the (S,G) entry to want traffic.
  JoinPrune star_join;
  star_join.sender = net::Ipv4Address(10, 0, 2, 7);
  star_join.upstream_neighbor = kSelf;
  star_join.entries = {{kGroup, net::Ipv4Address{}, true, true}};
  pim->on_join_prune(2, star_join);
  joins_.clear();

  JoinPrune sg_join;
  sg_join.sender = net::Ipv4Address(10, 0, 2, 7);
  sg_join.upstream_neighbor = kSelf;
  sg_join.entries = {{kGroup, kSource, false, true}};
  pim->on_join_prune(2, sg_join);
  // The (S,G) upstream join was sent (inherited interest made it needed
  // even before considering its own oifs).
  ASSERT_FALSE(joins_.empty());
  EXPECT_FALSE(joins_[0].message.entries[0].wildcard);
}

TEST_F(PimTest, DownstreamStateExpiresWithoutRefresh) {
  auto pim = make(false);
  JoinPrune join;
  join.sender = net::Ipv4Address(10, 0, 2, 7);
  join.upstream_neighbor = kSelf;
  join.entries = {{kGroup, net::Ipv4Address{}, true, true}};
  pim->on_join_prune(2, join);
  ASSERT_NE(pim->find_star_g(kGroup), nullptr);

  engine_.run_until(sim::TimePoint::start() + pim->config().state_holdtime +
                    sim::Duration::seconds(1));
  pim->expire_now();
  EXPECT_EQ(pim->find_star_g(kGroup), nullptr);
}

TEST_F(PimTest, PeriodicJoinsRefreshUpstreamState) {
  auto pim = make(false);
  pim->local_membership_changed(1, kGroup, true);
  const auto before = joins_.size();
  pim->send_periodic_joins();
  ASSERT_EQ(joins_.size(), before + 1);
  EXPECT_TRUE(joins_.back().message.entries[0].join);
}

TEST_F(PimTest, OifsExcludeUpstreamInterface) {
  auto pim = make(false);
  // Membership on the same interface the RP is reached through: no oif, no
  // upstream join (traffic would arrive and leave on the same interface).
  pim->local_membership_changed(0, kGroup, true);
  const RouteEntry* entry = pim->find_star_g(kGroup);
  // The entry may exist but must not list the upstream interface as oif.
  if (entry != nullptr) {
    EXPECT_EQ(entry->oifs.count(0), 0u);
  }
  EXPECT_TRUE(joins_.empty());
}

}  // namespace
}  // namespace mantra::pim
