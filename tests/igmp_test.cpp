#include <gtest/gtest.h>

#include <vector>

#include "igmp/igmp.hpp"

namespace mantra::igmp {
namespace {

const net::Ipv4Address kGroup1{224, 2, 0, 1};
const net::Ipv4Address kGroup2{224, 2, 0, 2};
const net::Ipv4Address kHostA{10, 0, 1, 2};
const net::Ipv4Address kHostB{10, 0, 1, 3};

struct Change {
  net::IfIndex ifindex;
  net::Ipv4Address group;
  bool has_members;
};

class IgmpTest : public ::testing::Test {
 protected:
  IgmpTest() : igmp_(engine_, Config{}) {
    igmp_.set_membership_change_handler(
        [this](net::IfIndex ifindex, net::Ipv4Address group, bool has) {
          changes_.push_back({ifindex, group, has});
        });
  }

  sim::Engine engine_;
  Igmp igmp_;
  std::vector<Change> changes_;
};

TEST_F(IgmpTest, FirstReportCreatesMembership) {
  igmp_.on_report(0, kGroup1, kHostA);
  EXPECT_TRUE(igmp_.has_members(0, kGroup1));
  ASSERT_EQ(changes_.size(), 1u);
  EXPECT_TRUE(changes_[0].has_members);
  EXPECT_EQ(changes_[0].group, kGroup1);
}

TEST_F(IgmpTest, SecondReporterDoesNotRefireChange) {
  igmp_.on_report(0, kGroup1, kHostA);
  igmp_.on_report(0, kGroup1, kHostB);
  EXPECT_EQ(changes_.size(), 1u);
  EXPECT_EQ(igmp_.members(0, kGroup1).size(), 2u);
}

TEST_F(IgmpTest, LastLeaveFiresChange) {
  igmp_.on_report(0, kGroup1, kHostA);
  igmp_.on_report(0, kGroup1, kHostB);
  igmp_.on_leave(0, kGroup1, kHostA);
  EXPECT_TRUE(igmp_.has_members(0, kGroup1));
  EXPECT_EQ(changes_.size(), 1u);
  igmp_.on_leave(0, kGroup1, kHostB);
  EXPECT_FALSE(igmp_.has_members(0, kGroup1));
  ASSERT_EQ(changes_.size(), 2u);
  EXPECT_FALSE(changes_[1].has_members);
}

TEST_F(IgmpTest, LeaveForUnknownGroupIsIgnored) {
  igmp_.on_leave(0, kGroup1, kHostA);
  EXPECT_TRUE(changes_.empty());
}

TEST_F(IgmpTest, NonMulticastReportIgnored) {
  igmp_.on_report(0, net::Ipv4Address(10, 0, 0, 1), kHostA);
  EXPECT_TRUE(changes_.empty());
}

TEST_F(IgmpTest, MembershipIsPerInterface) {
  igmp_.on_report(0, kGroup1, kHostA);
  igmp_.on_report(1, kGroup1, kHostB);
  EXPECT_TRUE(igmp_.has_members(0, kGroup1));
  EXPECT_TRUE(igmp_.has_members(1, kGroup1));
  EXPECT_EQ(igmp_.interfaces_with_members(kGroup1).size(), 2u);
  igmp_.on_leave(0, kGroup1, kHostA);
  EXPECT_FALSE(igmp_.has_members(0, kGroup1));
  EXPECT_TRUE(igmp_.has_members(1, kGroup1));
}

TEST_F(IgmpTest, GroupsAndAllGroups) {
  igmp_.on_report(0, kGroup1, kHostA);
  igmp_.on_report(0, kGroup2, kHostA);
  igmp_.on_report(1, kGroup1, kHostB);
  EXPECT_EQ(igmp_.groups(0).size(), 2u);
  EXPECT_EQ(igmp_.groups(1).size(), 1u);
  EXPECT_EQ(igmp_.all_groups().size(), 2u);
}

TEST_F(IgmpTest, ExpirySweepsSilentMembers) {
  igmp_.on_report(0, kGroup1, kHostA);
  // kHostA never re-reports; after the timeout the expiry sweep fires the
  // membership-down change.
  engine_.run_until(sim::TimePoint::start() + igmp_.config().membership_timeout +
                    sim::Duration::seconds(1));
  EXPECT_FALSE(igmp_.has_members(0, kGroup1));
  ASSERT_EQ(changes_.size(), 2u);
  EXPECT_FALSE(changes_[1].has_members);
}

TEST_F(IgmpTest, RefreshedMemberSurvivesExpiry) {
  igmp_.on_report(0, kGroup1, kHostA);
  engine_.run_until(sim::TimePoint::start() + sim::Duration::seconds(200));
  igmp_.on_report(0, kGroup1, kHostA);  // refresh
  igmp_.expire(engine_.now());
  EXPECT_TRUE(igmp_.has_members(0, kGroup1));
}

TEST(IgmpNoTimers, DisabledTimersNeverExpire) {
  sim::Engine engine;
  Config config;
  config.timers_enabled = false;
  Igmp igmp(engine, config);
  igmp.on_report(0, kGroup1, kHostA);
  engine.run_until(sim::TimePoint::start() + sim::Duration::days(30));
  EXPECT_TRUE(igmp.has_members(0, kGroup1));
  EXPECT_EQ(engine.events_processed(), 0u);  // no timer traffic at all
}

}  // namespace
}  // namespace mantra::igmp
