// core/report: the self-contained HTML/SVG report renders deterministically
// (same data, same bytes; sequential == parallel collection), live and
// .marc-replay reports are byte-identical for the same run, annotations
// (firing-alert spans, spike markers) appear, and hostile names are escaped.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/archive.hpp"
#include "core/mantra.hpp"
#include "core/report.hpp"
#include "workload/scenario.hpp"

namespace mantra::core {
namespace {

std::string read_file_bytes(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// --- synthetic-data rendering ------------------------------------------------

/// A run with enough shape to exercise every report surface: a spike cycle,
/// a stale cycle, a recovery, and one closed alert episode.
ReportData synthetic_data() {
  ReportData data;
  ReportTargetData target;
  target.name = "ucsb-gw";
  for (int c = 0; c < 12; ++c) {
    CycleResult result;
    result.t = sim::TimePoint::start() + sim::Duration::minutes(15 * (c + 1));
    result.usage.sessions = 20 + c;
    result.usage.participants = 50 + 2 * c;
    result.usage.bandwidth_kbps = 400.0 + 10.0 * c;
    result.dvmrp_routes = 900 + c;
    result.dvmrp_valid_routes = static_cast<std::size_t>(900 + (c == 6 ? 1500 : c));
    if (c == 6) {
      result.route_spike = true;
      result.route_spike_score = 15.5;
    }
    if (c == 3) result.stale = true;
    if (c == 8) result.consecutive_failures = 2;  // back from a dark spell
    target.results.push_back(result);
  }
  data.targets.push_back(std::move(target));

  AlertRecord record;
  record.rule = "route_spike";
  record.target = "ucsb-gw";
  record.severity = AlertSeverity::critical;
  record.pending_at = sim::TimePoint::start() + sim::Duration::minutes(105);
  record.fired_at = sim::TimePoint::start() + sim::Duration::minutes(120);
  record.resolved_at = sim::TimePoint::start() + sim::Duration::minutes(150);
  record.peak_value = 15.5;
  record.cycles_firing = 3;
  data.alerts.push_back(std::move(record));
  return data;
}

TEST(Report, RendersAnnotationsTablesAndEvents) {
  const std::string html = render_html_report(synthetic_data());
  // Self-contained: no scripts, no external asset references (the only
  // URLs are the SVG xmlns declarations).
  EXPECT_EQ(html.find("<script"), std::string::npos);
  EXPECT_EQ(html.find("<link"), std::string::npos);
  EXPECT_EQ(html.find("src="), std::string::npos);
  std::size_t urls = 0, xmlns = 0, pos = 0;
  while ((pos = html.find("http", pos)) != std::string::npos) {
    ++urls;
    ++pos;
  }
  pos = 0;
  while ((pos = html.find("xmlns=\"http://www.w3.org/2000/svg\"", pos)) !=
         std::string::npos) {
    ++xmlns;
    ++pos;
  }
  EXPECT_EQ(urls, xmlns);
  // The firing-alert span is shaded and the spike cycle marked.
  EXPECT_NE(html.find("class=\"alert-span\""), std::string::npos);
  EXPECT_NE(html.find("class=\"spike\""), std::string::npos);
  // Tables and the synthesized event tail made it in.
  EXPECT_NE(html.find("Collection status"), std::string::npos);
  EXPECT_NE(html.find("spike_detected"), std::string::npos);
  EXPECT_NE(html.find("target_recovered"), std::string::npos);
  EXPECT_NE(html.find("alert_firing"), std::string::npos);
  EXPECT_NE(html.find("alert_resolved"), std::string::npos);
  EXPECT_NE(html.find("route_spike"), std::string::npos);
}

// --- alert drill-down --------------------------------------------------------

/// A fully-populated explanation for the synthetic alert: two window points
/// (one degraded), threshold math, and a correlated event tail.
ProvenanceRecord synthetic_provenance() {
  ProvenanceRecord why;
  why.corr = "c8/ucsb-gw";
  why.rule = "route_spike";
  why.target = "ucsb-gw";
  why.severity = "critical";
  why.kind = "spike";
  why.fire_threshold = 1.0;
  why.clear_threshold = 1.0;
  why.for_cycles = 2;
  why.value_at_fire = 15.5;
  why.fire_cycle_seq = 8;
  why.pending_at = sim::TimePoint::start() + sim::Duration::minutes(105);
  why.fired_at = sim::TimePoint::start() + sim::Duration::minutes(120);
  why.math = "spike score = 15.5 >= 1 held 2/2 cycles; clears < 1 for 1";
  for (int c = 0; c < 2; ++c) {
    ProvenanceWindowPoint point;
    point.cycle_seq = static_cast<std::size_t>(7 + c);
    point.t = sim::TimePoint::start() + sim::Duration::minutes(105 + 15 * c);
    point.raw = point.value = c == 1 ? 15.5 : 12.0;
    point.over = true;
    point.facts.cycle_seq = point.cycle_seq;
    point.facts.stale = c == 0;
    point.facts.stale_tables = c == 0 ? 2 : 0;
    point.facts.capture_attempts = 2;
    point.facts.collection_latency = sim::Duration::seconds(30 + 10 * c);
    why.points.push_back(point);
  }
  TelemetryEvent event;
  event.level = EventLevel::warn;
  event.name = "spike_detected";
  event.sim_ts_ms = why.fired_at.total_ms();
  event.fields = {{"target", "ucsb-gw"}, {"score", "15.5"}};
  why.events.push_back(event);
  return why;
}

TEST(Report, AlertDrillDownRendersSparklineWaterfallAndTail) {
  ReportData data = synthetic_data();
  data.provenance.push_back(synthetic_provenance());
  const std::string html = render_html_report(data);

  EXPECT_NE(html.find("<h2>Alert drill-down</h2>"), std::string::npos);
  EXPECT_NE(html.find("<div class=\"drill\">"), std::string::npos);
  EXPECT_NE(html.find("route_spike : ucsb-gw (critical)"), std::string::npos);
  // The correlation id joins the card to spans/events/results.
  EXPECT_NE(html.find("corr=c8/ucsb-gw"), std::string::npos);
  // The threshold math, the window sparkline and the latency waterfall.
  EXPECT_NE(html.find("spike score = 15.5 &gt;= 1 held 2/2 cycles"),
            std::string::npos);
  EXPECT_NE(html.find("<svg class=\"spark\""), std::string::npos);
  EXPECT_NE(html.find("<svg class=\"wf\""), std::string::npos);
  EXPECT_NE(html.find("(worst in window)"), std::string::npos);
  // The correlated event tail renders in logfmt inside the card.
  EXPECT_NE(html.find("<pre class=\"events\">"), std::string::npos);
  EXPECT_NE(html.find("event=spike_detected target=ucsb-gw score=15.5"),
            std::string::npos);
  // No drill-down, no section: the empty report stays as before.
  EXPECT_EQ(render_html_report(synthetic_data()).find("Alert drill-down"),
            std::string::npos);
}

TEST(Report, AlertDrillDownKeepsNewestMaxExplained) {
  ReportData data = synthetic_data();
  for (int i = 0; i < 3; ++i) {
    ProvenanceRecord why = synthetic_provenance();
    why.fire_cycle_seq = static_cast<std::size_t>(10 + i);
    data.provenance.push_back(std::move(why));
  }
  ReportOptions options;
  options.max_explained = 2;
  const std::string html = render_html_report(data, options);
  EXPECT_NE(html.find("showing the newest 2 of 3 explanations."),
            std::string::npos);
  EXPECT_EQ(html.find("cycle 10 "), std::string::npos);  // oldest trimmed
  EXPECT_NE(html.find("cycle 11 "), std::string::npos);
  EXPECT_NE(html.find("cycle 12 "), std::string::npos);
}

TEST(Report, SameDataRendersSameBytes) {
  const ReportData data = synthetic_data();
  EXPECT_EQ(render_html_report(data), render_html_report(data));
}

TEST(Report, EscapesHostileNamesEverywhere) {
  ReportData data = synthetic_data();
  data.targets[0].name = "evil <b>&\"name\"</b>";
  data.alerts[0].target = data.targets[0].name;
  ReportOptions options;
  options.title = "<script>alert(1)</script>";
  const std::string html = render_html_report(data, options);
  EXPECT_EQ(html.find("<script>"), std::string::npos);
  EXPECT_EQ(html.find("<b>"), std::string::npos);
  EXPECT_NE(html.find("evil &lt;b&gt;&amp;&quot;name&quot;&lt;/b&gt;"),
            std::string::npos);
}

TEST(Report, EmptyDataRendersAndWrites) {
  const ReportData data;  // no targets, no alerts
  const std::string html = render_html_report(data);
  EXPECT_NE(html.find("no recorded cycles"), std::string::npos);
  EXPECT_NE(html.find("no alert fired"), std::string::npos);

  const std::filesystem::path path =
      std::filesystem::path(::testing::TempDir()) / "mantra_empty_report.html";
  ASSERT_TRUE(write_html_report(path.string(), data));
  EXPECT_EQ(read_file_bytes(path), html);
  EXPECT_FALSE(write_html_report("/nonexistent-dir/report.html", data));
}

TEST(Report, ReplayDataSortsTargetsByName) {
  std::vector<ReportTargetData> targets;
  targets.push_back({"zulu", {}});
  targets.push_back({"alpha", {}});
  const ReportData data =
      report_data_from_replay(std::move(targets), default_alert_rules());
  ASSERT_EQ(data.targets.size(), 2u);
  EXPECT_EQ(data.targets[0].name, "alpha");
  EXPECT_EQ(data.targets[1].name, "zulu");
}

// --- live run fixtures -------------------------------------------------------

/// The faulty two-target FIXW fixture: one clean hub, one degraded border,
/// alerts on (default rules), archives on.
class ReportEquivalence : public ::testing::Test {
 protected:
  ReportEquivalence() : scenario_(make_config()) { scenario_.start(); }

  static workload::ScenarioConfig make_config() {
    workload::ScenarioConfig config;
    config.seed = 33;
    config.domains = 4;
    config.hosts_per_domain = 6;
    config.dvmrp_prefixes_per_domain = 6;
    config.report_loss = 0.05;
    config.timer_scale = 1;
    config.full_timers = true;
    config.generator.session_arrivals_per_hour = 40.0;
    config.generator.bursts_per_day = 0.0;
    return config;
  }

  std::unique_ptr<Mantra> make_monitor(std::size_t worker_threads,
                                       const std::string& archive_dir) {
    MantraConfig config;
    config.cycle = sim::Duration::minutes(15);
    config.retry.max_attempts = 2;
    config.worker_threads = worker_threads;
    config.archive_dir = archive_dir;
    config.alerts.enabled = true;  // default rule set
    auto monitor = std::make_unique<Mantra>(
        scenario_.engine(), config,
        [](const std::string& name) -> std::unique_ptr<Transport> {
          FaultProfile profile;
          if (name == "ucsb-gw") {
            profile = FaultProfile::command_failure_rate(0.3);
          }
          return std::make_unique<FaultInjectingTransport>(
              per_target_seed(0x5e90a7, name), profile);
        });
    monitor->add_target(scenario_.network().router(scenario_.fixw_node()));
    monitor->add_target(scenario_.network().router(scenario_.ucsb_node()));
    monitor->start();
    return monitor;
  }

  workload::FixwScenario scenario_;
};

TEST_F(ReportEquivalence, LiveAndArchiveReplayReportsAreByteIdentical) {
  const std::filesystem::path base =
      std::filesystem::path(::testing::TempDir()) / "mantra_report_replay";
  std::filesystem::remove_all(base);
  auto monitor = make_monitor(0, base.string());
  scenario_.engine().run_until(scenario_.engine().now() +
                               sim::Duration::hours(8));

  const std::string live = render_html_report(report_data_from(*monitor));
  const std::vector<std::string> names = monitor->target_names();
  monitor.reset();  // flush the archives

  std::vector<ReportTargetData> targets;
  for (const std::string& name : names) {
    const ArchiveReader reader((base / (name + ".marc")).string());
    ASSERT_TRUE(reader.recovery().clean);
    targets.push_back({name, replay_archive(reader).results});
  }
  const std::string replayed = render_html_report(
      report_data_from_replay(std::move(targets), default_alert_rules()));
  EXPECT_EQ(live, replayed);
  // The faulty fixture actually produced alert content to compare.
  EXPECT_NE(live.find("class=\"alert-span\""), std::string::npos);
}

TEST_F(ReportEquivalence, SequentialAndParallelRunsRenderSameBytes) {
  const std::filesystem::path base =
      std::filesystem::path(::testing::TempDir()) / "mantra_report_par";
  std::filesystem::remove_all(base);
  auto sequential = make_monitor(0, (base / "seq").string());
  auto pooled = make_monitor(4, (base / "par").string());
  scenario_.engine().run_until(scenario_.engine().now() +
                               sim::Duration::hours(6));

  EXPECT_EQ(render_html_report(report_data_from(*sequential)),
            render_html_report(report_data_from(*pooled)));
}

}  // namespace
}  // namespace mantra::core
