#include <gtest/gtest.h>

#include "core/output.hpp"

namespace mantra::core {
namespace {

SummaryTable sample_table() {
  SummaryTable table({"group", "density", "kbps"});
  table.add_row({"224.2.0.1", "5", "100.5"});
  table.add_row({"224.2.0.2", "1", "3.2"});
  table.add_row({"224.4.0.9", "22", "48.0"});
  return table;
}

TEST(SummaryTable, SortNumericDescending) {
  SummaryTable table = sample_table();
  table.sort_by(*table.column_index("kbps"), true, true);
  EXPECT_EQ(table.rows()[0][0], "224.2.0.1");
  EXPECT_EQ(table.rows()[2][0], "224.2.0.2");
}

TEST(SummaryTable, SortNumericAscending) {
  SummaryTable table = sample_table();
  table.sort_by(*table.column_index("density"), true, false);
  EXPECT_EQ(table.rows()[0][1], "1");
  EXPECT_EQ(table.rows()[2][1], "22");
}

TEST(SummaryTable, SortLexicographic) {
  SummaryTable table = sample_table();
  table.sort_by(0, /*numeric=*/false, /*descending=*/false);
  EXPECT_EQ(table.rows()[0][0], "224.2.0.1");
  EXPECT_EQ(table.rows()[2][0], "224.4.0.9");
}

TEST(SummaryTable, SearchFiltersBySubstring) {
  const SummaryTable table = sample_table();
  const SummaryTable hits = table.search(0, "224.2");
  EXPECT_EQ(hits.row_count(), 2u);
  EXPECT_EQ(table.search(0, "999").row_count(), 0u);
}

TEST(SummaryTable, ComputedColumnAlgebra) {
  SummaryTable table = sample_table();
  table.add_computed_column("kbps_per_member", 2, 1, '/');
  ASSERT_EQ(table.column_count(), 4u);
  EXPECT_EQ(table.rows()[0][3], "20.100");
  // Multiplication too (the "unicast equivalent" computation).
  table.add_computed_column("unicast_kbps", 2, 1, '*');
  EXPECT_EQ(table.rows()[0][4], "502.500");
}

TEST(SummaryTable, ComputedColumnDivisionByZeroBlank) {
  SummaryTable table({"a", "b"});
  table.add_row({"4", "0"});
  table.add_computed_column("q", 0, 1, '/');
  EXPECT_EQ(table.rows()[0][2], "");
}

TEST(SummaryTable, ScaleColumnConvertsUnits) {
  SummaryTable table = sample_table();
  table.scale_column(2, 1.0 / 1000.0);  // kbps -> mbps
  EXPECT_EQ(table.rows()[0][2], "0.101");
}

TEST(SummaryTable, RenderAlignsColumns) {
  const std::string text = sample_table().render();
  EXPECT_NE(text.find("group"), std::string::npos);
  EXPECT_NE(text.find("224.4.0.9"), std::string::npos);
  // Header separator present.
  EXPECT_NE(text.find("----"), std::string::npos);
}

TEST(SummaryTable, CsvQuotesCommas) {
  SummaryTable table({"name"});
  table.add_row({"a,b"});
  EXPECT_EQ(table.to_csv(), "name\n\"a,b\"\n");
}

TEST(SummaryTable, CsvEscapesQuotesAndLineBreaks) {
  // RFC 4180: embedded quotes are doubled inside a quoted field; CR/LF force
  // quoting; clean cells stay unquoted. Session names come straight from SAP
  // announcements, so hostile cells must not corrupt the row structure.
  SummaryTable table({"group", "name"});
  table.add_row({"224.2.0.1", "NASA \"live\" feed"});
  table.add_row({"224.2.0.2", "line\nbreak"});
  table.add_row({"224.2.0.3", "cr\rhere"});
  table.add_row({"224.2.0.4", "plain"});
  EXPECT_EQ(table.to_csv(),
            "group,name\n"
            "224.2.0.1,\"NASA \"\"live\"\" feed\"\n"
            "224.2.0.2,\"line\nbreak\"\n"
            "224.2.0.3,\"cr\rhere\"\n"
            "224.2.0.4,plain\n");
}

TEST(SummaryTable, CsvQuotesHeaderCells) {
  SummaryTable table({"a,b", "c\"d"});
  table.add_row({"1", "2"});
  EXPECT_EQ(table.to_csv(), "\"a,b\",\"c\"\"d\"\n1,2\n");
}

TEST(TimeSeries, CsvEscapesSeriesName) {
  TimeSeries series("sessions, active \"now\"");
  series.add(sim::TimePoint::start() + sim::Duration::minutes(90), 42.0);
  const std::string csv = series.to_csv();
  EXPECT_NE(csv.find("hours,\"sessions, active \"\"now\"\"\"\n"),
            std::string::npos);
  EXPECT_NE(csv.find("1.500,42.0000"), std::string::npos);
}

TEST(SummaryTable, ShortRowsPadded) {
  SummaryTable table({"a", "b"});
  table.add_row({"1"});
  EXPECT_EQ(table.rows()[0].size(), 2u);
}

TEST(TimeSeries, Statistics) {
  TimeSeries series("x");
  for (int i = 1; i <= 5; ++i) {
    series.add(sim::TimePoint::start() + sim::Duration::hours(i),
               static_cast<double>(i));
  }
  EXPECT_DOUBLE_EQ(series.mean(), 3.0);
  EXPECT_DOUBLE_EQ(series.median(), 3.0);
  EXPECT_DOUBLE_EQ(series.min(), 1.0);
  EXPECT_DOUBLE_EQ(series.max(), 5.0);
  EXPECT_NEAR(series.stddev(), 1.5811, 0.001);
}

TEST(TimeSeries, SliceIsTheZoomOperation) {
  TimeSeries series("x");
  for (int i = 0; i < 10; ++i) {
    series.add(sim::TimePoint::start() + sim::Duration::hours(i),
               static_cast<double>(i));
  }
  const TimeSeries zoomed = series.slice(
      sim::TimePoint::start() + sim::Duration::hours(3),
      sim::TimePoint::start() + sim::Duration::hours(6));
  EXPECT_EQ(zoomed.size(), 4u);
  EXPECT_DOUBLE_EQ(zoomed.points().front().value, 3.0);
}

TEST(TimeSeries, CsvFormat) {
  TimeSeries series("sessions");
  series.add(sim::TimePoint::start() + sim::Duration::minutes(90), 42.0);
  const std::string csv = series.to_csv();
  EXPECT_NE(csv.find("hours,sessions"), std::string::npos);
  EXPECT_NE(csv.find("1.500,42.0000"), std::string::npos);
}

TEST(AsciiChart, RendersGlyphsAndLegend) {
  TimeSeries series("sessions");
  for (int i = 0; i < 20; ++i) {
    series.add(sim::TimePoint::start() + sim::Duration::hours(i),
               static_cast<double>(i * i));
  }
  AsciiChart chart(40, 10);
  chart.add_series(series, '*');
  const std::string text = chart.render();
  EXPECT_NE(text.find('*'), std::string::npos);
  EXPECT_NE(text.find("* = sessions"), std::string::npos);
}

TEST(AsciiChart, OverlayTwoSeries) {
  TimeSeries a("a"), b("b");
  for (int i = 0; i < 10; ++i) {
    a.add(sim::TimePoint::start() + sim::Duration::hours(i), 10.0);
    b.add(sim::TimePoint::start() + sim::Duration::hours(i), 20.0);
  }
  AsciiChart chart(30, 8);
  chart.add_series(a, '*');
  chart.add_series(b, 'o');
  const std::string text = chart.render();
  EXPECT_NE(text.find('*'), std::string::npos);
  EXPECT_NE(text.find('o'), std::string::npos);
}

TEST(AsciiChart, ManualYRangeClampsPoints) {
  TimeSeries series("x");
  series.add(sim::TimePoint::start(), 5.0);
  series.add(sim::TimePoint::start() + sim::Duration::hours(1), 5000.0);
  AsciiChart chart(20, 6);
  chart.add_series(series, '*');
  chart.set_y_range(0.0, 10.0);
  // Renders without crashing; the out-of-range point is clamped to the top.
  const std::string text = chart.render();
  EXPECT_NE(text.find("10.0"), std::string::npos);
}

TEST(AsciiChart, EmptyChartsSayso) {
  AsciiChart chart;
  EXPECT_EQ(chart.render(), "(empty chart)\n");
  TimeSeries empty("e");
  chart.add_series(empty, '*');
  EXPECT_EQ(chart.render(), "(no points in range)\n");
}

}  // namespace
}  // namespace mantra::core
