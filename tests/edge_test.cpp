// Edge cases not covered by the per-module suites: engine cancellation
// corner paths, codec extremes, allocator wrap-around, CLI rendering of
// empty/odd state, and chart range handling.
#include <gtest/gtest.h>

#include "core/collect.hpp"
#include "core/output.hpp"
#include "router/cli.hpp"
#include "router/network.hpp"
#include "sim/engine.hpp"
#include "workload/session.hpp"

namespace mantra {
namespace {

TEST(EngineEdge, RunUntilSkipsCancelledHeadEvents) {
  sim::Engine engine;
  int fired = 0;
  const auto a = engine.schedule_at(sim::TimePoint::from_ms(10), [&] { ++fired; });
  const auto b = engine.schedule_at(sim::TimePoint::from_ms(20), [&] { ++fired; });
  engine.schedule_at(sim::TimePoint::from_ms(500), [&] { ++fired; });
  engine.cancel(a);
  engine.cancel(b);
  // The only live event is beyond the window: nothing fires, and the
  // surfaced-but-out-of-window event is not lost.
  EXPECT_EQ(engine.run_until(sim::TimePoint::from_ms(100)), 0u);
  EXPECT_EQ(fired, 0);
  engine.run_until(sim::TimePoint::from_ms(1000));
  EXPECT_EQ(fired, 1);
}

TEST(EngineEdge, EventsProcessedCounts) {
  sim::Engine engine;
  for (int i = 0; i < 5; ++i) {
    engine.schedule_at(sim::TimePoint::from_ms(i), [] {});
  }
  engine.run();
  EXPECT_EQ(engine.events_processed(), 5u);
}

TEST(EngineEdge, CancelUnknownIdIsFalse) {
  sim::Engine engine;
  EXPECT_FALSE(engine.cancel(sim::kInvalidEvent));
  EXPECT_FALSE(engine.cancel(987654));
}

TEST(DurationEdge, NegativeRendersWithSign) {
  const sim::Duration d = sim::Duration::seconds(0) - sim::Duration::seconds(90);
  EXPECT_EQ(d.to_string(), "-00:01:30");
}

TEST(DurationEdge, SubMinuteRendersFractionalSeconds) {
  EXPECT_EQ(sim::Duration::milliseconds(1500).to_string(), "1.500s");
}

TEST(GroupAllocatorEdge, SmallRangeCyclesWithoutDuplicates) {
  workload::GroupAllocator allocator({net::Prefix(net::Ipv4Address(224, 9, 0, 0), 29)});
  std::set<net::Ipv4Address> seen;
  // /29 has 8 addresses, offsets 1..6 usable by the allocator's rule.
  for (int i = 0; i < 6; ++i) {
    const net::Ipv4Address group = allocator.allocate();
    ASSERT_FALSE(group.is_unspecified());
    EXPECT_TRUE(seen.insert(group).second);
  }
  // Release one; it becomes allocatable again.
  const net::Ipv4Address freed = *seen.begin();
  allocator.release(freed);
  const net::Ipv4Address again = allocator.allocate();
  EXPECT_EQ(again, freed);
}

TEST(PreprocessEdge, BareGreaterThanTokenIsKept) {
  EXPECT_EQ(core::preprocess("> odd line\n"), "> odd line\n");
}

TEST(PreprocessEdge, HostnameWithDotsAndDashesIsPrompt) {
  EXPECT_EQ(core::preprocess("core-rtr.ucsb.edu> show ip mroute\nkeep me\n"),
            "keep me\n");
}

class CliEdge : public ::testing::Test {
 protected:
  CliEdge() : rng_(3), network_(engine_, topo_, rng_, router::NetworkConfig{}) {
    r_ = topo_.add_router("r");
    const auto lan = topo_.create_lan(*net::Prefix::parse("10.1.1.0/24"));
    topo_.attach_to_lan(r_, lan);
    h_ = topo_.add_host("h");
    topo_.attach_to_lan(h_, lan);
    router::RouterConfig config;  // no protocols enabled at all
    config.igmp.timers_enabled = false;
    network_.add_router(r_, config);
    network_.start();
  }
  sim::Engine engine_;
  sim::Rng rng_;
  net::Topology topo_;
  router::Network network_;
  net::NodeId r_, h_;
};

TEST_F(CliEdge, ProtocollessRouterRendersNotRunningMarkers) {
  EXPECT_NE(router::cli::show_ip_dvmrp_route(*network_.router(r_), engine_.now())
                .find("% DVMRP not running"),
            std::string::npos);
  EXPECT_NE(router::cli::show_ip_msdp_sa_cache(*network_.router(r_), engine_.now())
                .find("% MSDP not running"),
            std::string::npos);
  EXPECT_NE(router::cli::show_ip_mbgp(*network_.router(r_), engine_.now())
                .find("% MBGP not running"),
            std::string::npos);
}

TEST_F(CliEdge, IgmpGroupsRendersMembership) {
  network_.host_join(h_, net::Ipv4Address(224, 2, 0, 9));
  engine_.run_until(engine_.now() + sim::Duration::seconds(1));
  const std::string text =
      router::cli::show_ip_igmp_groups(*network_.router(r_), engine_.now());
  EXPECT_NE(text.find("224.2.0.9"), std::string::npos);
  EXPECT_NE(text.find("10.1.1.2"), std::string::npos);  // the reporter
}

TEST_F(CliEdge, EmptyMrouteCountRendersHeaderOnly) {
  const std::string text =
      router::cli::show_ip_mroute_count(*network_.router(r_), engine_.now());
  EXPECT_NE(text.find("0 routes"), std::string::npos);
  EXPECT_EQ(text.find("Group:"), std::string::npos);
}

TEST(ChartEdge, CombinedManualRanges) {
  core::TimeSeries series("x");
  for (int i = 0; i < 100; ++i) {
    series.add(sim::TimePoint::start() + sim::Duration::hours(i),
               static_cast<double>(i));
  }
  core::AsciiChart chart(40, 8);
  chart.add_series(series, '*');
  chart.set_x_range(sim::TimePoint::start() + sim::Duration::hours(10),
                    sim::TimePoint::start() + sim::Duration::hours(20));
  chart.set_y_range(0, 50);
  const std::string text = chart.render();
  EXPECT_NE(text.find('*'), std::string::npos);
  EXPECT_NE(text.find("50.0"), std::string::npos);
}

TEST(ChartEdge, LongSpanUsesDayLabels) {
  core::TimeSeries series("x");
  series.add(sim::TimePoint::start(), 1.0);
  series.add(sim::TimePoint::start() + sim::Duration::days(30), 2.0);
  core::AsciiChart chart(40, 6);
  chart.add_series(series, '*');
  const std::string text = chart.render();
  EXPECT_NE(text.find("30.0d"), std::string::npos);
}

TEST(UnicastEdge, HostsGetRoutesToo) {
  net::Topology topo;
  const auto r1 = topo.add_router("r1");
  const auto r2 = topo.add_router("r2");
  topo.connect(r1, r2, *net::Prefix::parse("192.168.0.0/30"));
  const auto lan = topo.create_lan(*net::Prefix::parse("10.1.1.0/24"));
  topo.attach_to_lan(r1, lan);
  const auto host = topo.add_host("h");
  topo.attach_to_lan(host, lan);
  const auto ribs = router::compute_global_routes(topo);
  // The host can resolve the remote p2p subnet through its LAN.
  const auto* route = ribs[host].lookup(net::Ipv4Address(192, 168, 0, 2));
  ASSERT_NE(route, nullptr);
  EXPECT_EQ(route->next_hop, net::Ipv4Address(10, 1, 1, 1));
}

TEST(MfcEdge, VisitIsSortedDeterministically) {
  router::Mfc mfc;
  for (int i = 20; i > 0; --i) {
    mfc.ensure(net::Ipv4Address(static_cast<std::uint32_t>(0x0A000000 + i)),
               net::Ipv4Address(224, 2, 0, 1), router::MfcMode::kDense, 0,
               sim::TimePoint::start());
  }
  net::Ipv4Address previous;
  mfc.visit([&](const router::MfcEntry& entry) {
    EXPECT_LT(previous, entry.source);
    previous = entry.source;
  });
}

}  // namespace
}  // namespace mantra
